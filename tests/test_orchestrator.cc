/**
 * @file
 * Orchestrator tests (sim/orchestrator.hh + the qramsim_drive CLI):
 * backoff schedule math, wait-status classification, the hardened
 * PartialEstimate/JobManifest loaders (truncation corpus over every
 * byte boundary, byte-flip no-crash sweep, tamper rejection), the
 * atomic write helper, QRAMSIM_FAULT spec parsing, the in-process
 * retry/checkpoint/resume machinery, and the CLI end to end under
 * injected crashes, stalls, torn files, corrupt JSON, and exit-code
 * faults — with the recovered result byte-identical to an undisturbed
 * single-process run.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/atomicfile.hh"
#include "common/fault.hh"
#include "qram/bucket_brigade.hh"
#include "sim/fidelity.hh"
#include "sim/noise.hh"
#include "sim/orchestrator.hh"
#include "sim/sharding.hh"

namespace qramsim {
namespace {

std::string
readFileStr(const std::string &path)
{
    std::string out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return out;
    char buf[1 << 14];
    std::size_t nr;
    while ((nr = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, nr);
    std::fclose(f);
    return out;
}

/** Exit code of a shell command (-1 on abnormal termination). */
int
shCode(const std::string &cmd)
{
    const int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string
tempDir(const char *stem)
{
    const std::string dir = ::testing::TempDir() + stem + "_" +
                            std::to_string(
                                static_cast<unsigned>(getpid()));
    std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());
    return dir;
}

/** One small replay partial straight from the estimator. */
PartialEstimate
makeReplayPartial(std::size_t shots = 6)
{
    Rng memRng(7);
    Memory mem = Memory::random(3, memRng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(3));
    GateNoise noise(PauliRates::depolarizing(2e-3));
    SweepPlan plan =
        SweepPlan::partition(shots, 1, 2023, {0.5, 1.0});
    return est.runShard(noise, plan.shards[0]);
}

/** One small adaptive partial (the other JSON shape). */
PartialEstimate
makeAdaptivePartial(std::size_t draws = 32)
{
    Rng memRng(7);
    Memory mem = Memory::random(3, memRng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(3));
    GateNoise noise(PauliRates::depolarizing(2e-3));
    SweepPlan plan = SweepPlan::partition(draws, 1, 2023, {1.0});
    ShardSpec spec = plan.shards[0];
    spec.mode = EstimateMode::Adaptive;
    return est.runShard(noise, spec);
}

// --- Backoff schedule math ---------------------------------------------

TEST(Orchestrator, BackoffIsDeterministicAndBounded)
{
    RetryPolicy p;
    p.backoffBaseMs = 100.0;
    p.backoffFactor = 2.0;
    p.backoffMaxMs = 1000.0;
    p.jitterFrac = 0.5;
    for (unsigned attempt = 1; attempt <= 8; ++attempt) {
        for (std::size_t shard = 0; shard < 4; ++shard) {
            const double d = backoffDelayMs(p, 42, shard, attempt);
            EXPECT_EQ(d, backoffDelayMs(p, 42, shard, attempt))
                << "schedule must replay exactly";
            const double base = std::min(
                100.0 * std::pow(2.0, attempt - 1), 1000.0);
            EXPECT_GE(d, base * 0.75);
            EXPECT_LE(d, base * 1.25);
        }
    }
    // The cap binds: very late attempts never exceed max * (1+j/2).
    EXPECT_LE(backoffDelayMs(p, 42, 0, 30), 1000.0 * 1.25);
    // Different shards and attempts decorrelate the jitter.
    EXPECT_NE(backoffDelayMs(p, 42, 0, 1),
              backoffDelayMs(p, 42, 1, 1));
    EXPECT_NE(backoffDelayMs(p, 42, 0, 1),
              backoffDelayMs(p, 43, 0, 1));
    // Zero jitter collapses to the pure exponential.
    p.jitterFrac = 0.0;
    EXPECT_EQ(backoffDelayMs(p, 42, 3, 1), 100.0);
    EXPECT_EQ(backoffDelayMs(p, 42, 3, 2), 200.0);
    EXPECT_EQ(backoffDelayMs(p, 42, 3, 5), 1000.0);
}

TEST(Orchestrator, BackoffSurvivesExtremeInputs)
{
    // A non-growing factor must NOT iterate `attempt` times looking
    // for growth that never comes: with attempt counts near UINT_MAX
    // that loop would spin for minutes. The whole grid below
    // finishing inside the test timeout IS the regression test.
    RetryPolicy p;
    p.backoffBaseMs = 100.0;
    p.backoffMaxMs = 1000.0;
    p.jitterFrac = 0.0;
    const unsigned kHuge[] = {1u, 1000u, 1u << 20,
                              std::numeric_limits<unsigned>::max()};
    for (const double factor : {0.0, 0.5, 1.0}) {
        p.backoffFactor = factor;
        for (const unsigned attempt : kHuge)
            EXPECT_EQ(100.0, backoffDelayMs(p, 42, 0, attempt))
                << "factor " << factor << " attempt " << attempt;
    }
    // A growing factor reaches the cap and stops there, regardless
    // of how absurd the attempt count is.
    p.backoffFactor = 2.0;
    for (const unsigned attempt : kHuge)
        EXPECT_LE(backoffDelayMs(p, 42, 0, attempt), 1000.0);
    EXPECT_EQ(1000.0, backoffDelayMs(
                          p, 42, 0,
                          std::numeric_limits<unsigned>::max()));

    // Degenerate policies stay non-negative and bounded: a jitter
    // fraction of 2 spans [0, 2] x base, never below zero.
    p.jitterFrac = 2.0;
    for (std::size_t shard = 0; shard < 8; ++shard)
        for (unsigned attempt = 1; attempt <= 8; ++attempt) {
            const double d = backoffDelayMs(p, 7, shard, attempt);
            EXPECT_GE(d, 0.0);
            EXPECT_LE(d, 1000.0 * 2.0);
        }
    // Zero base: every delay is exactly zero — no NaN, no negative.
    p.backoffBaseMs = 0.0;
    EXPECT_EQ(0.0, backoffDelayMs(p, 7, 0, 1));
    EXPECT_EQ(0.0, backoffDelayMs(
                       p, 7, 0,
                       std::numeric_limits<unsigned>::max()));

    // The jitter stream decorrelates across shards and seeds. The
    // counter is shard*131 + attempt, so pairs like (shard 0,
    // attempt 132) and (shard 1, attempt 1) intentionally share a
    // jitter draw — never assert inequality across such collisions;
    // the bases differ (exponent 131 apart), which is what keeps the
    // schedules distinct.
    p.backoffBaseMs = 100.0;
    p.backoffFactor = 2.0;
    p.jitterFrac = 0.5;
    EXPECT_NE(backoffDelayMs(p, 7, 0, 132),
              backoffDelayMs(p, 7, 1, 1))
        << "colliding jitter counters still yield distinct delays "
           "via the capped-vs-base exponent";
}

// --- Wait-status classification ----------------------------------------

TEST(Orchestrator, ClassifyWaitStatusMapsTheExitContract)
{
    // Real wait statuses from real children: std::system returns the
    // raw waitpid status of the shell.
    auto statusOf = [](const char *cmd) {
        return std::system(cmd);
    };
    EXPECT_EQ(classifyWaitStatus(statusOf("exit 0")).outcome,
              WorkerOutcome::Success);
    EXPECT_EQ(classifyWaitStatus(statusOf("exit 2")).outcome,
              WorkerOutcome::Permanent); // usage
    EXPECT_EQ(classifyWaitStatus(statusOf("exit 3")).outcome,
              WorkerOutcome::Retryable); // I/O
    EXPECT_EQ(classifyWaitStatus(statusOf("exit 4")).outcome,
              WorkerOutcome::Permanent); // runtime
    EXPECT_EQ(classifyWaitStatus(statusOf("exit 5")).outcome,
              WorkerOutcome::Retryable); // injected fault
    EXPECT_EQ(classifyWaitStatus(statusOf("exit 127")).outcome,
              WorkerOutcome::Retryable); // exec failure
    // std::system already wraps the command in `sh -c`, so the kill
    // targets that shell itself and the status is a real signal death.
    const int killed = statusOf("kill -KILL $$");
    ASSERT_TRUE(WIFSIGNALED(killed));
    const ExitClass cls = classifyWaitStatus(killed);
    EXPECT_EQ(cls.outcome, WorkerOutcome::Retryable);
    EXPECT_NE(cls.detail.find("signal"), std::string::npos);
}

// --- Hardened JSON loading ---------------------------------------------

TEST(Orchestrator, PartialTruncationCorpusEveryByteBoundary)
{
    for (const bool adaptive : {false, true}) {
        SCOPED_TRACE(adaptive ? "adaptive" : "replay");
        const PartialEstimate part =
            adaptive ? makeAdaptivePartial() : makeReplayPartial();
        const std::string json = part.toJson();
        ASSERT_GT(json.size(), 100u);
        PartialEstimate out;
        std::string err;
        // Every prefix cut before the closing brace must fail
        // cleanly — no throw, no crash, no UB, and a nonempty
        // reason. (Prefixes that drop only trailing whitespace
        // after the final '}' are complete objects and may parse.)
        const std::size_t lastBrace = json.rfind('}');
        ASSERT_NE(lastBrace, std::string::npos);
        for (std::size_t len = 0; len <= lastBrace; ++len) {
            err.clear();
            ASSERT_FALSE(PartialEstimate::fromJson(
                json.substr(0, len), out, &err))
                << "prefix of " << len << " bytes parsed";
            EXPECT_FALSE(err.empty()) << "no reason at " << len;
        }
        EXPECT_TRUE(PartialEstimate::fromJson(json, out, &err))
            << err;
        EXPECT_EQ(out.toJson(), json) << "round-trip must be exact";
    }
}

TEST(Orchestrator, PartialByteFlipsNeverCrashTheLoader)
{
    const std::string json = makeReplayPartial().toJson();
    PartialEstimate out;
    std::string err;
    for (std::size_t i = 0; i < json.size(); ++i) {
        std::string bad = json;
        bad[i] = static_cast<char>(bad[i] == 'z' ? 'a' : bad[i] + 1);
        // Must return (true or false) without crashing; a parse that
        // still succeeds (e.g. a flip inside the workload string)
        // must yield a self-consistent partial.
        PartialEstimate p;
        if (PartialEstimate::fromJson(bad, p, &err)) {
            PartialEstimate check = p;
            check.recomputeSums();
            EXPECT_EQ(check.sumF, p.sumF);
        }
    }
    // Hostile numerics the old strtod/strtoull path accepted.
    std::string negShots = json;
    const std::size_t at = negShots.find("\"total_shots\": ");
    ASSERT_NE(at, std::string::npos);
    negShots.insert(at + std::strlen("\"total_shots\": "), "-");
    EXPECT_FALSE(PartialEstimate::fromJson(negShots, out, &err));
    std::string infRow = json;
    const std::size_t rows = infRow.find("\"rows_full\": [");
    ASSERT_NE(rows, std::string::npos);
    infRow.insert(rows + std::strlen("\"rows_full\": ["), "inf,");
    EXPECT_FALSE(PartialEstimate::fromJson(infRow, out, &err));
}

TEST(Orchestrator, PartialTamperedSumsOrRowsAreRejected)
{
    const std::string json = makeReplayPartial().toJson();
    std::string corrupted = json;
    fault::corruptJson(corrupted);
    ASSERT_NE(corrupted, json);
    PartialEstimate out;
    std::string err;
    EXPECT_FALSE(PartialEstimate::fromJson(corrupted, out, &err));
    EXPECT_NE(err.find("sums disagree"), std::string::npos) << err;
    EXPECT_TRUE(PartialEstimate::fromJson(json, out, &err)) << err;
}

TEST(Orchestrator, ManifestRoundTripAndValidation)
{
    JobManifest m;
    m.workload = "--arch bb --m 3 \"quoted\"";
    m.totalShots = 96;
    m.seed = 2023;
    m.stream = ShotStream::Counter;
    m.factors = {0.5, 1.0, 2.0};
    m.numShards = 6;
    m.attempts = {1, 2, 1, 1, 3, 1};
    m.speculative = {0, 0, 1, 0, 0, 0};
    m.state = {"done", "done", "done", "done", "failed", "pending"};
    const std::string json = m.toJson();
    JobManifest out;
    std::string err;
    ASSERT_TRUE(JobManifest::fromJson(json, out, &err)) << err;
    EXPECT_EQ(out.toJson(), json);
    EXPECT_EQ(out.workload, m.workload);
    EXPECT_EQ(out.attempts, m.attempts);
    EXPECT_EQ(out.state, m.state);
    // Truncation corpus for the manifest too (prefixes that drop
    // only trailing whitespace after the final '}' may parse).
    const std::size_t lastBrace = json.rfind('}');
    ASSERT_NE(lastBrace, std::string::npos);
    for (std::size_t len = 0; len <= lastBrace; ++len) {
        EXPECT_FALSE(JobManifest::fromJson(json.substr(0, len), out))
            << "prefix of " << len << " bytes parsed";
    }
    // Cross-field validation: unknown states, fractional attempts,
    // mismatched array lengths.
    JobManifest bad = m;
    bad.state[0] = "limbo";
    EXPECT_FALSE(JobManifest::fromJson(bad.toJson(), out, &err));
    bad = m;
    bad.attempts[0] = 1.5;
    EXPECT_FALSE(JobManifest::fromJson(bad.toJson(), out, &err));
    bad = m;
    bad.speculative.pop_back();
    EXPECT_FALSE(JobManifest::fromJson(bad.toJson(), out, &err));
}

// --- Atomic writes ------------------------------------------------------

TEST(Orchestrator, AtomicWriteFileReplacesWithoutResidue)
{
    const std::string dir = tempDir("qramsim_atomic");
    const std::string path = dir + "/target.json";
    std::string err;
    ASSERT_TRUE(atomicWriteFile(path, "first", &err)) << err;
    EXPECT_EQ(readFileStr(path), "first");
    ASSERT_TRUE(atomicWriteFile(path, "second", &err)) << err;
    EXPECT_EQ(readFileStr(path), "second");
    // No temp residue.
    EXPECT_NE(shCode("ls " + dir + "/*.tmp.* 2>/dev/null"), 0);
    // Non-regular target: written directly, not renamed over.
    EXPECT_TRUE(atomicWriteFile("/dev/null", "x", &err)) << err;
    struct stat st;
    ASSERT_EQ(::stat("/dev/null", &st), 0);
    EXPECT_FALSE(S_ISREG(st.st_mode));
    // Unwritable directory: clean failure with a reason.
    EXPECT_FALSE(atomicWriteFile(dir + "/no/such/dir/x", "x", &err));
    EXPECT_FALSE(err.empty());
    std::system(("rm -rf " + dir).c_str());
}

// --- Fault-spec parsing -------------------------------------------------

TEST(Orchestrator, FaultSpecGrammar)
{
    std::vector<fault::Spec> specs;
    std::string err;
    ASSERT_TRUE(fault::parseSpecs("crash:5;stall:40:60;corrupt:70",
                                  specs, &err))
        << err;
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0].kind, fault::Kind::Crash);
    EXPECT_EQ(specs[0].shot, 5u);
    EXPECT_EQ(specs[1].kind, fault::Kind::Stall);
    EXPECT_EQ(specs[1].param, 60.0);
    EXPECT_EQ(specs[2].kind, fault::Kind::Corrupt);
    // Defaults: stall 3600 s, exit code 5.
    ASSERT_TRUE(fault::parseSpecs("stall:1", specs, &err));
    EXPECT_EQ(specs[0].param, 3600.0);
    ASSERT_TRUE(fault::parseSpecs("exit:1", specs, &err));
    EXPECT_EQ(specs[0].param, 5.0);
    // Malformed anything rejects the whole string.
    EXPECT_FALSE(fault::parseSpecs("crash", specs, &err));
    EXPECT_FALSE(fault::parseSpecs("crash:x", specs, &err));
    EXPECT_FALSE(fault::parseSpecs("crash:-1", specs, &err));
    EXPECT_FALSE(fault::parseSpecs("smash:1", specs, &err));
    EXPECT_FALSE(
        fault::parseSpecs("crash:1;stall:nope", specs, &err));
    EXPECT_TRUE(specs.empty());
    // arm() selects by shard range.
    ASSERT_TRUE(
        fault::parseSpecs("crash:5;corrupt:70", specs, &err));
    EXPECT_EQ(fault::arm(specs, 0, 16), &specs[0]);
    EXPECT_EQ(fault::arm(specs, 64, 80), &specs[1]);
    EXPECT_EQ(fault::arm(specs, 16, 64), nullptr);
}

// --- In-process orchestration ------------------------------------------

TEST(Orchestrator, InProcessRetriesCheckpointsAndResumes)
{
    const std::string dir = tempDir("qramsim_orch_inproc");
    Rng memRng(7);
    Memory mem = Memory::random(3, memRng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(3));
    GateNoise noise(PauliRates::depolarizing(2e-3));

    auto makeCfg = [&](int failuresForShard1) {
        auto failures =
            std::make_shared<int>(failuresForShard1);
        OrchestratorConfig cfg;
        cfg.jobDir = dir + "/job";
        cfg.plan = SweepPlan::partition(24, 3, 2023, {0.5, 1.0});
        cfg.requestedShards = 3;
        cfg.retry.maxAttempts = 3;
        cfg.retry.backoffBaseMs = 1.0; // fast tests
        cfg.inlineRunner = [&, failures](const ShardSpec &spec) {
            if (spec.shotBegin == 8 && (*failures)-- > 0)
                throw std::runtime_error("injected inline failure");
            return est.runShard(noise, spec);
        };
        return cfg;
    };

    // Two transient failures on shard 1: retried to success.
    DriveReport rep = Orchestrator(makeCfg(2)).run();
    ASSERT_TRUE(rep.error.empty()) << rep.error;
    EXPECT_TRUE(rep.complete);
    EXPECT_EQ(rep.shards[1].attempts, 3u);
    EXPECT_EQ(rep.retries, 2u);
    EXPECT_FALSE(rep.resultJson.empty());
    const std::string cleanResult = rep.resultJson;

    // The checkpoints and result are on disk, and the result matches
    // the direct single-process merge byte for byte.
    EXPECT_EQ(readFileStr(dir + "/job/result.json"), cleanResult);
    std::vector<PartialEstimate> parts;
    for (const ShardSpec &spec :
         SweepPlan::partition(24, 3, 2023, {0.5, 1.0}).shards)
        parts.push_back(est.runShard(noise, spec));
    PartialEstimate merged;
    std::string err;
    ASSERT_TRUE(mergePartials(std::move(parts), merged, &err));
    EXPECT_EQ(cleanResult, merged.resultJson());

    // Exhausted attempts degrade gracefully: shard 1 missing, the
    // other checkpoints intact.
    std::system(("rm -rf " + dir + "/job").c_str());
    rep = Orchestrator(makeCfg(99)).run();
    ASSERT_TRUE(rep.error.empty()) << rep.error;
    EXPECT_FALSE(rep.complete);
    ASSERT_EQ(rep.missing.size(), 1u);
    EXPECT_EQ(rep.missing[0], 1u);
    EXPECT_EQ(rep.shards[1].attempts, 3u);
    EXPECT_TRUE(rep.resultJson.empty());

    // Resume with the fault gone: only shard 1 recomputes, the other
    // two come back from their checkpoints, attempts accumulate, and
    // the final result is byte-identical to the clean run.
    OrchestratorConfig cfg = makeCfg(0);
    cfg.resume = true;
    rep = Orchestrator(std::move(cfg)).run();
    ASSERT_TRUE(rep.error.empty()) << rep.error;
    EXPECT_TRUE(rep.complete);
    EXPECT_EQ(rep.resumedShards, 2u);
    EXPECT_TRUE(rep.shards[0].resumed);
    EXPECT_FALSE(rep.shards[1].resumed);
    EXPECT_EQ(rep.launched, 1u);
    EXPECT_EQ(rep.resultJson, cleanResult);
    JobManifest mani;
    ASSERT_TRUE(JobManifest::fromJson(
        readFileStr(dir + "/job/manifest.json"), mani, &err))
        << err;
    EXPECT_EQ(mani.attempts[1], 4.0) << "3 exhausted + 1 resumed";
    EXPECT_EQ(mani.state,
              (std::vector<std::string>{"done", "done", "done"}));

    // A resume against a different plan is refused outright.
    cfg = makeCfg(0);
    cfg.resume = true;
    cfg.plan = SweepPlan::partition(48, 3, 2023, {0.5, 1.0});
    rep = Orchestrator(std::move(cfg)).run();
    EXPECT_FALSE(rep.error.empty());
    std::system(("rm -rf " + dir).c_str());
}

TEST(Orchestrator, CorruptCheckpointIsRecomputedNotTrusted)
{
    const std::string dir = tempDir("qramsim_orch_ckpt");
    Rng memRng(7);
    Memory mem = Memory::random(3, memRng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(3));
    GateNoise noise(PauliRates::depolarizing(2e-3));
    OrchestratorConfig cfg;
    cfg.jobDir = dir + "/job";
    cfg.plan = SweepPlan::partition(16, 2, 2023);
    cfg.requestedShards = 2;
    cfg.inlineRunner = [&](const ShardSpec &spec) {
        return est.runShard(noise, spec);
    };
    OrchestratorConfig cfg2 = cfg; // keep a copy for the resume
    DriveReport rep = Orchestrator(std::move(cfg)).run();
    ASSERT_TRUE(rep.complete) << rep.error;
    const std::string result = rep.resultJson;

    // Tamper with one checkpoint; a resume must revalidate, reject
    // it, and recompute that shard — same bytes in the end.
    const std::string ck =
        Orchestrator::checkpointPath(dir + "/job", 0);
    std::string tampered = readFileStr(ck);
    fault::corruptJson(tampered);
    ASSERT_TRUE(atomicWriteFile(ck, tampered));
    cfg2.resume = true;
    rep = Orchestrator(std::move(cfg2)).run();
    ASSERT_TRUE(rep.complete) << rep.error;
    EXPECT_EQ(rep.resumedShards, 1u);
    EXPECT_EQ(rep.launched, 1u);
    EXPECT_EQ(rep.resultJson, result);
    std::system(("rm -rf " + dir).c_str());
}

// --- CLI end to end -----------------------------------------------------

/** Common workload of the CLI scenarios (96 shots, 6 shards of 16:
 *  crash:5 -> shard 0, stall:40 -> shard 2, corrupt:70 -> shard 4). */
const char kWorkload[] =
    " --arch bb --m 3 --noise gate-depol --eps 2e-3"
    " --shots 96 --seed 2023 --factors 0.5,1,2";

/** The undisturbed single-process reference result. */
std::string
makeReference(const std::string &dir)
{
    const std::string shard = QRAMSIM_SHARD_BIN;
    EXPECT_EQ(shCode(shard + " run" + kWorkload +
                     " --shard 0/1 --out " + dir + "/ref_part.json"),
              0);
    EXPECT_EQ(shCode(shard + " merge --out " + dir + "/ref.json " +
                     dir + "/ref_part.json"),
              0);
    return readFileStr(dir + "/ref.json");
}

TEST(OrchestratorCli, CleanDriveMatchesSingleProcessByteForByte)
{
    const std::string dir = tempDir("qramsim_drive_clean");
    const std::string ref = makeReference(dir);
    ASSERT_FALSE(ref.empty());
    ASSERT_EQ(shCode(std::string(QRAMSIM_DRIVE_BIN) + " --job " +
                     dir + "/job --shards 6 --workers 3" + kWorkload +
                     " --worker-bin " + QRAMSIM_SHARD_BIN +
                     " 2>/dev/null"),
              0);
    EXPECT_EQ(readFileStr(dir + "/job/result.json"), ref);
    // The in-process lane produces the same bytes.
    ASSERT_EQ(shCode(std::string(QRAMSIM_DRIVE_BIN) + " --job " +
                     dir + "/job2 --shards 6 --in-process" +
                     kWorkload + " 2>/dev/null"),
              0);
    EXPECT_EQ(readFileStr(dir + "/job2/result.json"), ref);
    std::system(("rm -rf " + dir).c_str());
}

TEST(OrchestratorCli, RecoversFromCrashTornFileAndCorruptJson)
{
    const std::string dir = tempDir("qramsim_drive_faults");
    const std::string ref = makeReference(dir);
    // One crash, one torn (truncated) output, one corrupt partial —
    // each one-shot via the mark prefix, so retries run clean.
    ASSERT_EQ(
        shCode("QRAMSIM_FAULT='crash:5;truncate:40;corrupt:70' "
               "QRAMSIM_FAULT_MARK=" +
               dir + "/mark " + QRAMSIM_DRIVE_BIN + " --job " + dir +
               "/job --shards 6 --workers 3 --backoff-base 10" +
               kWorkload + " --worker-bin " + QRAMSIM_SHARD_BIN +
               " 2>/dev/null"),
        0);
    EXPECT_EQ(readFileStr(dir + "/job/result.json"), ref)
        << "recovered result must be byte-identical";
    JobManifest mani;
    std::string err;
    ASSERT_TRUE(JobManifest::fromJson(
        readFileStr(dir + "/job/manifest.json"), mani, &err))
        << err;
    EXPECT_EQ(mani.attempts[0], 2.0) << "crash retried once";
    EXPECT_EQ(mani.attempts[2], 2.0) << "torn file retried once";
    EXPECT_EQ(mani.attempts[4], 2.0) << "corrupt JSON retried once";
    EXPECT_EQ(mani.attempts[1], 1.0);
    std::system(("rm -rf " + dir).c_str());
}

TEST(OrchestratorCli, DegradesThenResumesByteIdentically)
{
    const std::string dir = tempDir("qramsim_drive_resume");
    const std::string ref = makeReference(dir);
    // Shard 2 exits with the injected-fault code on EVERY attempt (no
    // mark): attempts exhaust, the job degrades to exit 1.
    ASSERT_EQ(shCode("QRAMSIM_FAULT='exit:40' " +
                     std::string(QRAMSIM_DRIVE_BIN) + " --job " +
                     dir + "/job --shards 6 --workers 3 "
                     "--max-attempts 2 --backoff-base 10" +
                     kWorkload + " --worker-bin " +
                     QRAMSIM_SHARD_BIN + " 2>/dev/null"),
              1);
    EXPECT_EQ(shCode("test -f " + dir + "/job/result.json"), 1)
        << "no result for a degraded job";
    EXPECT_EQ(shCode("test -f " + dir + "/job/shard-001.json"), 0)
        << "completed checkpoints must survive";
    JobManifest mani;
    std::string err;
    ASSERT_TRUE(JobManifest::fromJson(
        readFileStr(dir + "/job/manifest.json"), mani, &err))
        << err;
    EXPECT_EQ(mani.state[2], "failed");
    EXPECT_EQ(mani.attempts[2], 2.0);

    // Resume with the fault gone: only shard 2 runs, the other five
    // come back from checkpoints, and the merged bytes match.
    ASSERT_EQ(shCode(std::string(QRAMSIM_DRIVE_BIN) + " --job " +
                     dir + "/job --resume --shards 6 --workers 3" +
                     kWorkload + " --worker-bin " +
                     QRAMSIM_SHARD_BIN + " 2>/dev/null"),
              0);
    EXPECT_EQ(readFileStr(dir + "/job/result.json"), ref);
    ASSERT_TRUE(JobManifest::fromJson(
        readFileStr(dir + "/job/manifest.json"), mani, &err))
        << err;
    EXPECT_EQ(mani.attempts[2], 3.0)
        << "attempt counters accumulate across resumes";
    EXPECT_EQ(mani.attempts[1], 1.0)
        << "resumed shards are not re-run";
    EXPECT_EQ(mani.state[2], "done");
    std::system(("rm -rf " + dir).c_str());
}

TEST(OrchestratorCli, DeadlineKillsStalledWorkerAndRetries)
{
    const std::string dir = tempDir("qramsim_drive_deadline");
    const std::string ref = makeReference(dir);
    // Shard 2 stalls 30 s on its first attempt; the 2 s deadline
    // kills it, the mark is consumed, and the retry completes.
    ASSERT_EQ(
        shCode("QRAMSIM_FAULT='stall:40:30' QRAMSIM_FAULT_MARK=" +
               dir + "/mark " + QRAMSIM_DRIVE_BIN + " --job " + dir +
               "/job --shards 6 --workers 3 --deadline 2 "
               "--backoff-base 10" +
               kWorkload + " --worker-bin " + QRAMSIM_SHARD_BIN +
               " 2>/dev/null"),
        0);
    EXPECT_EQ(readFileStr(dir + "/job/result.json"), ref);
    const std::string report = readFileStr(dir + "/job/report.json");
    EXPECT_NE(report.find("\"timeouts\": 1"), std::string::npos)
        << report;
    JobManifest mani;
    std::string err;
    ASSERT_TRUE(JobManifest::fromJson(
        readFileStr(dir + "/job/manifest.json"), mani, &err))
        << err;
    EXPECT_EQ(mani.attempts[2], 2.0);
    std::system(("rm -rf " + dir).c_str());
}

TEST(OrchestratorCli, StragglerSpeculationCrossChecksByteForByte)
{
    const std::string dir = tempDir("qramsim_drive_spec");
    const std::string ref = makeReference(dir);
    // Shard 2 stalls 5 s, then completes NORMALLY. The other five
    // shards finish fast, the median trips the straggler threshold,
    // a duplicate launches (its mark already consumed, so it runs
    // clean) and wins; --wait-duplicates keeps the job alive until
    // the stalled original finishes so the two byte-compare.
    ASSERT_EQ(
        shCode("QRAMSIM_FAULT='stall:40:5' QRAMSIM_FAULT_MARK=" +
               dir + "/mark " + QRAMSIM_DRIVE_BIN + " --job " + dir +
               "/job --shards 6 --workers 6 --straggler 4 "
               "--straggler-min 3 --wait-duplicates" +
               kWorkload + " --worker-bin " + QRAMSIM_SHARD_BIN +
               " 2>/dev/null"),
        0);
    EXPECT_EQ(readFileStr(dir + "/job/result.json"), ref);
    const std::string report = readFileStr(dir + "/job/report.json");
    EXPECT_NE(report.find("\"speculative\": 1"), std::string::npos)
        << report;
    EXPECT_NE(report.find("\"duplicate_matches\": 1"),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("\"duplicate_mismatches\": 0"),
              std::string::npos)
        << report;
    std::system(("rm -rf " + dir).c_str());
}

// --- Worker exit-code pinning ------------------------------------------

TEST(OrchestratorCli, ShardExitCodesFollowTheContract)
{
    const std::string shard = QRAMSIM_SHARD_BIN;
    const std::string dir = tempDir("qramsim_shard_codes");
    const std::string quiet = " > /dev/null 2>&1";
    const std::string run =
        " run --arch bb --m 3 --noise gate-depol --eps 2e-3"
        " --shots 8 --seed 1";
    // 0: success.
    EXPECT_EQ(shCode(shard + run + " --out " + dir + "/ok.json" +
                     quiet),
              0);
    // 2: usage — unknown flag, malformed value, bad subcommand,
    // unknown arch/noise, shard index out of range.
    EXPECT_EQ(shCode(shard + run + " --bogus 1" + quiet), 2);
    EXPECT_EQ(shCode(shard + run + " --m nope" + quiet), 2);
    EXPECT_EQ(shCode(shard + " frobnicate" + quiet), 2);
    EXPECT_EQ(shCode(shard + run + " --arch cray" + quiet), 2);
    EXPECT_EQ(shCode(shard + run + " --shard 9/4" + quiet), 2);
    // 3: I/O — unwritable output, unreadable merge input.
    EXPECT_EQ(shCode(shard + run + " --out " + dir +
                     "/no/such/dir/x.json" + quiet),
              3);
    EXPECT_EQ(shCode(shard + " merge " + dir + "/absent.json" +
                     quiet),
              3);
    // 4: runtime — readable but invalid merge inputs.
    ASSERT_TRUE(atomicWriteFile(dir + "/garbage.json", "not json"));
    EXPECT_EQ(shCode(shard + " merge " + dir + "/garbage.json" +
                     quiet),
              4);
    EXPECT_EQ(shCode(shard + " merge --out /dev/null " + dir +
                     "/ok.json " + dir + "/ok.json" + quiet),
              4)
        << "overlapping shards are a merge (runtime) error";
    // 5: the injected-fault default.
    EXPECT_EQ(shCode("QRAMSIM_FAULT='exit:0' " + shard + run +
                     " --out /dev/null" + quiet),
              5);
    EXPECT_EQ(shCode("QRAMSIM_FAULT='exit:0:7' " + shard + run +
                     " --out /dev/null" + quiet),
              7)
        << "exit faults honor their code parameter";
    // Crash fault: signal death, not an exit code.
    const int status =
        std::system(("QRAMSIM_FAULT='crash:0' " + shard + run +
                     " --out /dev/null" + quiet)
                        .c_str());
    EXPECT_TRUE(!WIFEXITED(status) || WEXITSTATUS(status) >= 128)
        << "crash must look like a signal death";
    // A truncate fault exits 0 but leaves an unusable partial — the
    // lie the orchestrator's output validation must catch.
    EXPECT_EQ(shCode("QRAMSIM_FAULT='truncate:0' " + shard + run +
                     " --out " + dir + "/torn.json" + quiet),
              0);
    PartialEstimate p;
    std::string err;
    EXPECT_FALSE(PartialEstimate::fromJson(
        readFileStr(dir + "/torn.json"), p, &err));
    // Drive usage errors.
    EXPECT_EQ(shCode(std::string(QRAMSIM_DRIVE_BIN) + quiet), 2);
    EXPECT_EQ(shCode(std::string(QRAMSIM_DRIVE_BIN) + " --job " +
                     dir + "/j --shard 0/2" + quiet),
              2)
        << "--shard is owned by the driver";
    std::system(("rm -rf " + dir).c_str());
}

} // namespace
} // namespace qramsim
