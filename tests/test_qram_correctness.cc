/**
 * @file
 * Query-semantics tests for every architecture.
 *
 * The defining contract (Eq. 2): for every basis address i the circuit
 * maps |i>_A |0>_B |0...0> to |i>_A |x_i>_B |0...0> — address restored,
 * bus holding the data bit, every internal qubit back to |0>. The
 * Feynman-path simulator checks this exactly (no sampling).
 */

#include <gtest/gtest.h>

#include <memory>

#include "qram/baselines.hh"
#include "qram/bucket_brigade.hh"
#include "qram/fanout.hh"
#include "qram/select_swap.hh"
#include "qram/sqc.hh"
#include "qram/virtual_qram.hh"
#include "sim/feynman.hh"

namespace qramsim {
namespace {

/** Verify Eq. 2 for every address of @p mem. */
void
expectCorrectQuery(const QueryArchitecture &arch, const Memory &mem)
{
    QueryCircuit qc = arch.build(mem);
    FeynmanExecutor exec(qc.circuit);
    const unsigned n = arch.addressWidth();
    for (std::uint64_t i = 0; i < mem.size(); ++i) {
        PathState in(qc.circuit.numQubits());
        for (unsigned b = 0; b < n; ++b)
            in.bits.set(qc.addressQubits[b], (i >> b) & 1);
        PathState out = exec.runIdeal(in);

        // Bus = x_i.
        EXPECT_EQ(out.bits.get(qc.busQubit), mem.bit(i))
            << arch.name() << ": wrong data at address " << i;

        // Address restored; all internals |0>.
        BitVec expected(qc.circuit.numQubits());
        for (unsigned b = 0; b < n; ++b)
            expected.set(qc.addressQubits[b], (i >> b) & 1);
        expected.set(qc.busQubit, mem.bit(i));
        EXPECT_EQ(out.bits, expected)
            << arch.name() << ": residual entanglement at address " << i
            << "\n got " << out.bits.toString()
            << "\n want " << expected.toString();

        // Classical-reversible circuits acquire no phase.
        EXPECT_DOUBLE_EQ(out.phase.real(), 1.0);
        EXPECT_DOUBLE_EQ(out.phase.imag(), 0.0);
    }
}

/** Deterministic memory patterns worth probing. */
std::vector<Memory>
memoriesFor(unsigned n, std::uint64_t seed)
{
    std::vector<Memory> mems;
    Rng rng(seed);
    mems.push_back(Memory(n));                     // all zero
    Memory ones(n);
    for (std::uint64_t i = 0; i < ones.size(); ++i)
        ones.setBit(i, true);                      // all one
    mems.push_back(ones);
    Memory alt(n);
    for (std::uint64_t i = 0; i < alt.size(); ++i)
        alt.setBit(i, i & 1);                      // alternating
    mems.push_back(alt);
    mems.push_back(Memory::random(n, rng));        // random x3
    mems.push_back(Memory::random(n, rng));
    mems.push_back(Memory::random(n, rng));
    return mems;
}

// --- Virtual QRAM across the (m, k) plane and option combinations ---

struct VqParam
{
    unsigned m, k;
    bool opt1, opt2, opt3;
};

class VirtualQramCorrectness
    : public ::testing::TestWithParam<VqParam>
{};

TEST_P(VirtualQramCorrectness, QueriesAllAddresses)
{
    const VqParam p = GetParam();
    VirtualQramOptions opts;
    opts.recycleCarriers = p.opt1;
    opts.lazyDataSwapping = p.opt2;
    opts.pipelined = p.opt3;
    VirtualQram arch(p.m, p.k, opts);
    for (const Memory &mem :
         memoriesFor(p.m + p.k, 1000 + p.m * 64 + p.k))
        expectCorrectQuery(arch, mem);
}

std::vector<VqParam>
vqGrid()
{
    std::vector<VqParam> ps;
    // Option ablation on a fixed mid-size config.
    for (int mask = 0; mask < 8; ++mask)
        ps.push_back({3, 2, bool(mask & 1), bool(mask & 2),
                      bool(mask & 4)});
    // (m, k) sweep with all optimizations on.
    for (unsigned m = 1; m <= 5; ++m)
        for (unsigned k = 0; k <= 3; ++k)
            ps.push_back({m, k, true, true, true});
    // Degenerate pure-SQC configurations.
    ps.push_back({0, 1, true, true, true});
    ps.push_back({0, 3, true, true, true});
    return ps;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, VirtualQramCorrectness, ::testing::ValuesIn(vqGrid()),
    [](const ::testing::TestParamInfo<VqParam> &info) {
        const VqParam &p = info.param;
        return "i" + std::to_string(info.index) + "m" +
               std::to_string(p.m) + "k" + std::to_string(p.k) + "o" +
               std::to_string(p.opt1) + std::to_string(p.opt2) +
               std::to_string(p.opt3);
    });

// --- Baselines and classic architectures ---

class WidthParam : public ::testing::TestWithParam<unsigned>
{};

TEST_P(WidthParam, BucketBrigade)
{
    BucketBrigadeQram arch(GetParam());
    for (const Memory &mem : memoriesFor(GetParam(), 2000 + GetParam()))
        expectCorrectQuery(arch, mem);
}

TEST_P(WidthParam, Fanout)
{
    FanoutQram arch(GetParam());
    for (const Memory &mem : memoriesFor(GetParam(), 3000 + GetParam()))
        expectCorrectQuery(arch, mem);
}

TEST_P(WidthParam, Sqc)
{
    SequentialQueryCircuit arch(GetParam());
    for (const Memory &mem : memoriesFor(GetParam(), 4000 + GetParam()))
        expectCorrectQuery(arch, mem);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthParam,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

struct HybridParam
{
    unsigned m, k;
};

class HybridCorrectness : public ::testing::TestWithParam<HybridParam>
{};

TEST_P(HybridCorrectness, SqcBucketBrigade)
{
    SqcBucketBrigade arch(GetParam().m, GetParam().k);
    for (const Memory &mem :
         memoriesFor(GetParam().m + GetParam().k,
                     5000 + GetParam().m * 8 + GetParam().k))
        expectCorrectQuery(arch, mem);
}

TEST_P(HybridCorrectness, SqcSelectSwap)
{
    SelectSwapQram arch(GetParam().m, GetParam().k);
    for (const Memory &mem :
         memoriesFor(GetParam().m + GetParam().k,
                     6000 + GetParam().m * 8 + GetParam().k))
        expectCorrectQuery(arch, mem);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HybridCorrectness,
    ::testing::Values(HybridParam{1, 0}, HybridParam{1, 1},
                      HybridParam{2, 0}, HybridParam{2, 1},
                      HybridParam{2, 2}, HybridParam{3, 1},
                      HybridParam{3, 2}, HybridParam{4, 1},
                      HybridParam{4, 2}, HybridParam{5, 2}),
    [](const ::testing::TestParamInfo<HybridParam> &info) {
        return "m" + std::to_string(info.param.m) + "k" +
               std::to_string(info.param.k);
    });

// --- Optimization semantics preservation -----------------------------

TEST(Optimizations, AllVariantsAgreeOnOutputs)
{
    Rng rng(99);
    Memory mem = Memory::random(5, rng); // m=3, k=2
    for (int mask = 0; mask < 8; ++mask) {
        VirtualQramOptions opts;
        opts.recycleCarriers = mask & 1;
        opts.lazyDataSwapping = mask & 2;
        opts.pipelined = mask & 4;
        VirtualQram arch(3, 2, opts);
        expectCorrectQuery(arch, mem);
    }
}

TEST(Optimizations, LazySwappingReducesClassicalGates)
{
    Rng rng(123);
    Memory mem = Memory::random(6, rng); // m=3, k=3 -> 8 segments
    VirtualQramOptions lazy, eager;
    eager.lazyDataSwapping = false;
    QueryCircuit lazyQc = VirtualQram(3, 3, lazy).build(mem);
    QueryCircuit eagerQc = VirtualQram(3, 3, eager).build(mem);
    EXPECT_LT(lazyQc.circuit.countClassical(),
              eagerQc.circuit.countClassical());
}

TEST(Optimizations, RecyclingSavesQubits)
{
    Memory mem(5);
    VirtualQramOptions on, off;
    off.recycleCarriers = false;
    QueryCircuit qOn = VirtualQram(4, 1, on).build(mem);
    QueryCircuit qOff = VirtualQram(4, 1, off).build(mem);
    // Saving = one pair per internal node = 2 * (2^m - 1).
    EXPECT_EQ(qOff.circuit.numQubits() - qOn.circuit.numQubits(),
              2u * ((1u << 4) - 1));
}

} // namespace
} // namespace qramsim
