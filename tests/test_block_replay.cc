/**
 * @file
 * Op-major block-replay tests (EnsembleBlock + runSpanEnsembleBlock +
 * the estimator's block accumulation).
 *
 * The transposed engine's contract is byte-identity: every shot of an
 * op-major block replay must equal its solo slot-loop replay — bits
 * and phases — and the estimator must produce bit-identical results
 * through ReplayEngine::Ensemble (op-major), EnsembleSlots (shot-major
 * slot loop) and Scalar (path-by-path oracle) at every replay-batch
 * width in [1, 64], across architectures, noise kinds, SIMD tiers,
 * checkpoint joins, ragged tail batches, degenerate inputs and the
 * threaded shot loop. Plus the EnsembleBlock layout invariants the
 * block kernels assume and kernel-level differentials for the block
 * kernel tier implementations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <string>
#include <vector>

#include "common/pathensemble.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "qram/baselines.hh"
#include "qram/bucket_brigade.hh"
#include "qram/compact.hh"
#include "qram/fanout.hh"
#include "qram/select_swap.hh"
#include "qram/virtual_qram.hh"
#include "sim/fidelity.hh"
#include "sim/noise.hh"

namespace qramsim {
namespace {

/** Restore the dispatch tier on scope exit. */
struct TierGuard
{
    simd::Tier prev;

    explicit TierGuard(simd::Tier t) : prev(simd::activeTier())
    {
        simd::setActiveTier(t);
    }

    ~TierGuard() { simd::setActiveTier(prev); }
};

std::vector<simd::Tier>
supportedTiers()
{
    std::vector<simd::Tier> tiers;
    for (simd::Tier t : {simd::Tier::Scalar, simd::Tier::Avx2,
                         simd::Tier::Avx512})
        if (simd::tierSupported(t))
            tiers.push_back(t);
    return tiers;
}

void
expectResultsEq(const FidelityResult &a, const FidelityResult &b)
{
    EXPECT_EQ(a.full, b.full);
    EXPECT_EQ(a.reduced, b.reduced);
    EXPECT_EQ(a.fullStderr, b.fullStderr);
    EXPECT_EQ(a.reducedStderr, b.reducedStderr);
}

// --- EnsembleBlock layout invariants ----------------------------------

TEST(EnsembleBlock, LayoutAlignmentAndMaskLifecycle)
{
    EnsembleBlock blk;
    for (std::size_t np : {std::size_t(1), std::size_t(63),
                           std::size_t(64), std::size_t(65),
                           std::size_t(200)}) {
        for (std::size_t ns : {std::size_t(1), std::size_t(3),
                               std::size_t(16)}) {
            SCOPED_TRACE(testing::Message()
                         << "np=" << np << " ns=" << ns);
            blk.reshape(7, np, ns);
            EXPECT_EQ(blk.numQubits(), 7u);
            EXPECT_EQ(blk.numPaths(), np);
            EXPECT_EQ(blk.numShots(), ns);
            EXPECT_EQ(blk.dataWords(), (np + 63) / 64);
            EXPECT_EQ(blk.wordsPerQubit() % simd::kRowAlignWords, 0u);
            EXPECT_GE(blk.wordsPerQubit(), blk.dataWords());
            EXPECT_EQ(blk.rowWords(), ns * blk.wordsPerQubit());

            // Every shot slice of every block row is cache-line
            // aligned (what the block kernels' vector steps assume).
            for (std::size_t q = 0; q < 7; ++q)
                for (std::size_t s = 0; s < ns; ++s)
                    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(
                                  blk.row(q, s)) %
                                  simd::kRowAlign,
                              0u);
            EXPECT_EQ(blk.row(0, 0), blk.blockRow(0));
            EXPECT_EQ(blk.row(1, 0),
                      blk.blockRow(0) + blk.rowWords());

            // The valid-mask template matches a PathEnsemble's and
            // reshape clears every join: the mask row is all zero
            // until join(s) opens exactly that shot's slice.
            PathEnsemble ref(7, np);
            for (std::size_t w = 0; w < blk.wordsPerQubit(); ++w)
                EXPECT_EQ(blk.validMask()[w], ref.validMask(w));
            for (std::size_t j = 0; j < blk.rowWords(); ++j)
                EXPECT_EQ(blk.maskRow()[j], 0u);
            for (std::size_t s = 0; s < ns; ++s)
                EXPECT_FALSE(blk.joined(s));
            const std::size_t pw = blk.wordsPerQubit();
            const std::size_t joinShot = ns / 2;
            blk.join(joinShot);
            EXPECT_TRUE(blk.joined(joinShot));
            for (std::size_t s = 0; s < ns; ++s)
                for (std::size_t w = 0; w < pw; ++w)
                    EXPECT_EQ(blk.maskRow()[s * pw + w],
                              s == joinShot ? ref.validMask(w) : 0u);
        }
    }
}

TEST(EnsembleBlock, LoadShotRoundTripsAndPadsStayZero)
{
    Rng rng(20260731);
    const std::size_t nq = 9, np = 70, ns = 4;
    PathEnsemble ens(nq, np);
    for (std::size_t q = 0; q < nq; ++q)
        for (std::size_t w = 0; w < ens.wordsPerQubit(); ++w)
            ens.row(q)[w] = rng.bits() & ens.validMask(w);
    for (std::size_t k = 0; k < np; ++k)
        ens.phase(k) = {rng.uniform(), rng.uniform()};

    EnsembleBlock blk;
    blk.reshape(nq, np, ns);
    blk.loadShot(2, ens);
    for (std::size_t q = 0; q < nq; ++q) {
        for (std::size_t w = 0; w < blk.wordsPerQubit(); ++w) {
            EXPECT_EQ(blk.row(q, 2)[w], ens.row(q)[w]);
            // Tail bits of the loaded slice are zero (the ensemble's
            // own invariant carries over).
            EXPECT_EQ(blk.row(q, 2)[w] & ~blk.validMask()[w], 0u);
        }
    }
    for (std::size_t k = 0; k < np; ++k)
        EXPECT_EQ(blk.phaseSlice(2)[k], ens.phase(k));
    for (std::size_t k = 0; k < np; ++k)
        for (std::size_t q = 0; q < nq; ++q)
            EXPECT_EQ(blk.get(q, 2, k), ens.get(q, k));
}

// --- Block kernel differentials ---------------------------------------

TEST(BlockKernels, MatchScalarReferenceAcrossTiers)
{
    Rng rng(424242);
    const simd::RowKernels &S = simd::kernels(simd::Tier::Scalar);

    for (simd::Tier tier : supportedTiers()) {
        SCOPED_TRACE(simd::tierName(tier));
        const simd::RowKernels &K = simd::kernels(tier);

        for (int trial = 0; trial < 120; ++trial) {
            // Arena shapes: pw a multiple of kRowAlignWords (the
            // EnsembleBlock contract), 1..6 shots, 5 block rows.
            const std::size_t pw =
                simd::kRowAlignWords * (1 + rng.below(3));
            const std::size_t ns = 1 + rng.below(6);
            const std::size_t nw = ns * pw;
            const std::size_t nrows = 5;
            simd::AlignedWords rows(nrows * nw);
            for (auto &w : rows)
                w = rng.bits();
            simd::AlignedWords bmask(nw);
            for (auto &w : bmask)
                w = rng.below(4) == 0 ? rng.bits()
                                      : ~std::uint64_t(0);

            // Up to 6 controls exercises the hoisted fast path AND
            // the >kCtrlHoist fallback of the fire kernels.
            EnsembleCtrl ctrls[6];
            const std::size_t nc = rng.below(7);
            for (std::size_t c = 0; c < nc; ++c)
                ctrls[c] = {static_cast<std::uint32_t>(
                                rng.below(nrows)),
                            rng.bernoulli(0.5) ? ~std::uint64_t(0)
                                               : std::uint64_t(0)};

            // xorFireBlock
            simd::AlignedWords a(nw), b(nw);
            for (std::size_t w = 0; w < nw; ++w)
                a[w] = b[w] = rng.bits();
            S.xorFireBlock(a.data(), rows.data(), nw, ctrls, nc,
                           bmask.data(), nw);
            K.xorFireBlock(b.data(), rows.data(), nw, ctrls, nc,
                           bmask.data(), nw);
            EXPECT_EQ(a, b);

            // The block fire kernel must equal the ROW fire kernel on
            // the same operands (same arithmetic, fused layout).
            for (std::size_t w = 0; w < nw; ++w)
                b[w] = a[w];
            S.xorFire(a.data(), rows.data(), nw, ctrls, nc,
                      bmask.data(), nw);
            K.xorFireBlock(b.data(), rows.data(), nw, ctrls, nc,
                           bmask.data(), nw);
            EXPECT_EQ(a, b);

            // swapFireBlock
            simd::AlignedWords a0(nw), a1(nw), b0(nw), b1(nw);
            for (std::size_t w = 0; w < nw; ++w) {
                a0[w] = b0[w] = rng.bits();
                a1[w] = b1[w] = rng.bits();
            }
            S.swapFireBlock(a0.data(), a1.data(), rows.data(), nw,
                            ctrls, nc, bmask.data(), nw);
            K.swapFireBlock(b0.data(), b1.data(), rows.data(), nw,
                            ctrls, nc, bmask.data(), nw);
            EXPECT_EQ(a0, b0);
            EXPECT_EQ(a1, b1);

            // xorRowBlock: broadcast of one pw-word row into every
            // slice == per-slice xorRow.
            simd::AlignedWords src(pw);
            for (auto &w : src)
                w = rng.bits();
            for (std::size_t w = 0; w < nw; ++w)
                a[w] = b[w] = rng.bits();
            for (std::size_t s = 0; s < ns; ++s)
                S.xorRow(a.data() + s * pw, src.data(), pw);
            K.xorRowBlock(b.data(), src.data(), pw, ns);
            EXPECT_EQ(a, b);

            // diffOrBlock: per-slice diffOr against one shared row,
            // including the per-shot any flags.
            simd::AlignedWords devA(nw), devB(nw);
            for (std::size_t w = 0; w < nw; ++w)
                devA[w] = devB[w] = rng.bits();
            std::vector<std::uint64_t> anyA(ns), anyB(ns);
            for (std::size_t s = 0; s < ns; ++s)
                anyA[s] = S.diffOr(devA.data() + s * pw,
                                   rows.data() + s * pw, src.data(),
                                   pw);
            K.diffOrBlock(devB.data(), rows.data(), src.data(), pw,
                          ns, anyB.data());
            EXPECT_EQ(devA, devB);
            for (std::size_t s = 0; s < ns; ++s) {
                // diffOr returns the OR of diffs; diffOrBlock's any
                // flag must agree on zero/nonzero AND exact value.
                EXPECT_EQ(anyA[s], anyB[s]) << "slice " << s;
            }
        }
    }
}

// --- Executor-level: op-major vs slot loop ----------------------------

/**
 * Drive runSpanEnsembleBlock and runSpanEnsembleBatch over the same
 * shots (random start ensembles advanced to per-shot join positions,
 * per-shot event lists) and require every shot's bits and phases to
 * match word for word and value for value.
 */
void
expectBlockMatchesSlots(const FeynmanExecutor &exec,
                        const std::vector<std::uint32_t> &froms,
                        const std::vector<std::vector<FlatEvent>> &evs,
                        std::size_t np, Rng &rng)
{
    const std::size_t nq = exec.circuit().numQubits();
    const std::uint32_t numOps =
        static_cast<std::uint32_t>(exec.stream().size());
    const std::size_t n = froms.size();

    // Random inputs advanced (noiselessly) to each shot's join
    // position — the checkpoint-gather shape of the estimator.
    std::vector<PathEnsemble> slotEns;
    EnsembleBlock blk;
    blk.reshape(nq, np, n);
    std::vector<FeynmanExecutor::BlockReplayShot> shots(n);
    for (std::size_t b = 0; b < n; ++b) {
        PathEnsemble e(nq, np);
        for (std::size_t q = 0; q < nq; ++q)
            for (std::size_t w = 0; w < e.wordsPerQubit(); ++w)
                e.row(q)[w] = rng.bits() & e.validMask(w);
        exec.runSpanEnsemble(e, 0, froms[b], nullptr, 0);
        blk.loadShot(b, e);
        shots[b] = {evs[b].data(), evs[b].size(), froms[b], 0};
        slotEns.push_back(std::move(e));
    }

    exec.runSpanEnsembleBlock(blk, shots.data(), numOps);

    for (std::size_t b = 0; b < n; ++b) {
        SCOPED_TRACE(testing::Message() << "shot " << b);
        exec.runSpanEnsemble(slotEns[b], froms[b], numOps,
                             evs[b].data(), evs[b].size());
        for (std::size_t q = 0; q < nq; ++q)
            for (std::size_t w = 0; w < blk.wordsPerQubit(); ++w)
                EXPECT_EQ(blk.row(q, b)[w], slotEns[b].row(q)[w])
                    << "q=" << q << " w=" << w;
        for (std::size_t k = 0; k < np; ++k)
            EXPECT_EQ(blk.phaseSlice(b)[k], slotEns[b].phase(k))
                << "path " << k;
        // Zero-tail invariant holds through the block replay.
        for (std::size_t q = 0; q < nq; ++q)
            for (std::size_t w = 0; w < blk.wordsPerQubit(); ++w)
                EXPECT_EQ(blk.row(q, b)[w] & ~blk.validMask()[w], 0u);
    }
}

TEST(BlockReplay, MixedJoinsAndEventsMatchSlotLoop)
{
    Rng rng(90125);
    Memory mem = Memory::random(3, rng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FeynmanExecutor exec(qc.circuit);
    const std::uint32_t numOps =
        static_cast<std::uint32_t>(exec.stream().size());
    const std::uint32_t nq =
        static_cast<std::uint32_t>(qc.circuit.numQubits());

    for (simd::Tier tier : supportedTiers()) {
        SCOPED_TRACE(simd::tierName(tier));
        TierGuard guard(tier);
        for (int trial = 0; trial < 8; ++trial) {
            // 65 paths puts the tail word in play; shots join at
            // assorted positions including 0 and numOps (events-only
            // shot, never enters the op loop).
            const std::size_t n = 1 + rng.below(6);
            std::vector<std::uint32_t> froms;
            std::vector<std::vector<FlatEvent>> evs;
            for (std::size_t b = 0; b < n; ++b) {
                std::uint32_t from;
                if (trial == 0 && b == 0)
                    from = numOps; // join-at-end edge
                else
                    from = static_cast<std::uint32_t>(
                        rng.below(numOps + 1));
                std::vector<FlatEvent> ev;
                const std::size_t ne = rng.below(6);
                for (std::size_t e = 0; e < ne; ++e) {
                    // Positions in [from, numOps], including both
                    // boundaries (fire-before-first-op and tail).
                    const std::uint32_t pos =
                        from + static_cast<std::uint32_t>(
                                   rng.below(numOps - from + 1));
                    const PauliKind kinds[3] = {PauliKind::X,
                                                PauliKind::Y,
                                                PauliKind::Z};
                    ev.push_back({pos,
                                  static_cast<std::uint32_t>(
                                      rng.below(nq)),
                                  kinds[rng.below(3)]});
                }
                std::sort(ev.begin(), ev.end(),
                          [](const FlatEvent &a, const FlatEvent &b) {
                              return a.pos < b.pos;
                          });
                froms.push_back(from);
                evs.push_back(std::move(ev));
            }
            expectBlockMatchesSlots(exec, froms, evs, 65, rng);
        }
    }
}

// --- Estimator-level: three engines, all architectures ----------------

TEST(BlockReplay, EnginesBitIdenticalAllArchitecturesAllNoise)
{
    Rng rng(5551212);
    struct Arch
    {
        const char *name;
        QueryCircuit qc;
        unsigned width;
    };
    Memory mem3 = Memory::random(3, rng);
    Memory mem4 = Memory::random(4, rng);
    std::vector<Arch> archs;
    archs.push_back({"virtual", VirtualQram(2, 1).build(mem3), 3});
    archs.push_back({"bucket-brigade",
                     BucketBrigadeQram(3).build(mem3), 3});
    archs.push_back({"fanout", FanoutQram(3).build(mem3), 3});
    archs.push_back({"sqc", SqcBucketBrigade(2, 1).build(mem3), 3});
    archs.push_back({"select-swap",
                     SelectSwapQram(2, 1).build(mem3), 3});
    archs.push_back({"compact", CompactQram(2, 2).build(mem4), 4});

    struct NoiseCase
    {
        const char *name;
        PauliRates rates;
    };
    const NoiseCase noises[] = {
        {"X", PauliRates::bitFlip(4e-3)},
        {"Y", PauliRates{0.0, 4e-3, 0.0}},
        {"Z", PauliRates::phaseFlip(4e-3)},
        {"depol", PauliRates::depolarizing(4e-3)},
    };

    const std::size_t shots = 32;
    const std::uint64_t seed = 909;
    for (const Arch &a : archs) {
        FidelityEstimator est(a.qc.circuit, a.qc.addressQubits,
                              a.qc.busQubit,
                              AddressSuperposition::uniform(a.width));
        for (const NoiseCase &nc : noises) {
            SCOPED_TRACE(std::string(a.name) + " / " + nc.name);
            QubitChannelNoise noise(nc.rates);

            // Ragged-tail batch widths: 3 and 64 never divide the
            // general-shot count of a 32-shot run evenly.
            for (std::size_t width : {std::size_t(3), std::size_t(8),
                                      std::size_t(64)}) {
                SCOPED_TRACE("width=" + std::to_string(width));
                est.setReplayBatch(width);
                est.setReplayEngine(
                    FidelityEstimator::ReplayEngine::Ensemble);
                const FidelityResult block =
                    est.estimate(noise, shots, seed);
                est.setReplayEngine(
                    FidelityEstimator::ReplayEngine::EnsembleSlots);
                const FidelityResult slots =
                    est.estimate(noise, shots, seed);
                est.setReplayEngine(
                    FidelityEstimator::ReplayEngine::Scalar);
                const FidelityResult scalar =
                    est.estimate(noise, shots, seed);
                expectResultsEq(block, slots);
                expectResultsEq(block, scalar);

                // Threaded (counter-stream) mode agrees across the
                // block and slot engines too.
                est.setReplayEngine(
                    FidelityEstimator::ReplayEngine::Ensemble);
                const FidelityResult blockMt =
                    est.estimate(noise, shots, seed, 3);
                est.setReplayEngine(
                    FidelityEstimator::ReplayEngine::EnsembleSlots);
                const FidelityResult slotsMt =
                    est.estimate(noise, shots, seed, 3);
                expectResultsEq(blockMt, slotsMt);
            }
            est.setReplayEngine(
                FidelityEstimator::ReplayEngine::Ensemble);
        }
    }
}

TEST(BlockReplay, EveryBatchWidthBitIdentical)
{
    // The acceptance contract: op-major batched replay is
    // byte-identical to the per-shot loop at EVERY width in [1, 64].
    // Depolarizing noise keeps nearly every shot on the general
    // path, so every width actually exercises batched replay.
    Rng rng(31337);
    Memory mem = Memory::random(3, rng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(3));
    GateNoise depol(PauliRates::depolarizing(5e-3));
    const std::size_t shots = 48;
    const std::uint64_t seed = 2027;

    est.setReplayEngine(FidelityEstimator::ReplayEngine::EnsembleSlots);
    est.setReplayBatch(1);
    const FidelityResult ref = est.estimate(depol, shots, seed);

    est.setReplayEngine(FidelityEstimator::ReplayEngine::Ensemble);
    for (std::size_t width = 1; width <= 64; ++width) {
        SCOPED_TRACE(width);
        EXPECT_EQ(est.setReplayBatch(width), width);
        expectResultsEq(est.estimate(depol, shots, seed), ref);
    }
}

TEST(BlockReplay, MixedCheckpointJoinsInOneBatch)
{
    // A deeper circuit gets many replay checkpoints; with sparse
    // depolarizing noise, shots of one batch start from different
    // checkpoints (different first-event positions) — the per-shot
    // join masks of the op-major pass. Identity against the slot
    // loop proves the joins are exact.
    Rng rng(8086);
    Memory mem = Memory::random(5, rng);
    QueryCircuit qc = BucketBrigadeQram(5).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(5));
    GateNoise depol(PauliRates::depolarizing(5e-4));
    est.setReplayBatch(16);

    const FidelityResult block = est.estimate(depol, 64, 11);
    est.setReplayEngine(FidelityEstimator::ReplayEngine::EnsembleSlots);
    const FidelityResult slots = est.estimate(depol, 64, 11);
    expectResultsEq(block, slots);
}

TEST(BlockReplay, DuplicateVisibleKeysThroughBlockPath)
{
    // Repeated addresses disable the O(1) collision lookup
    // (dupVisibleKeys) — the block accumulation must keep the
    // historical exhaustive-scan semantics bit for bit.
    Rng rng(1123);
    Memory mem = Memory::random(3, rng);
    QueryCircuit qc = VirtualQram(2, 1).build(mem);

    AddressSuperposition dup;
    dup.addresses = {5, 5, 2, 7, 2};
    const double a = 1.0 / std::sqrt(5.0);
    dup.amps.assign(5, {a, 0.0});

    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          dup);
    GateNoise depol(PauliRates::depolarizing(4e-3));
    for (std::size_t width : {std::size_t(1), std::size_t(5),
                              std::size_t(16)}) {
        SCOPED_TRACE(width);
        est.setReplayBatch(width);
        est.setReplayEngine(FidelityEstimator::ReplayEngine::Ensemble);
        const FidelityResult block = est.estimate(depol, 40, 91);
        est.setReplayEngine(
            FidelityEstimator::ReplayEngine::EnsembleSlots);
        const FidelityResult slots = est.estimate(depol, 40, 91);
        est.setReplayEngine(FidelityEstimator::ReplayEngine::Scalar);
        const FidelityResult scalar = est.estimate(depol, 40, 91);
        expectResultsEq(block, slots);
        expectResultsEq(block, scalar);
    }
}

TEST(BlockReplay, BitIdenticalAcrossTiersThroughBlockPath)
{
    Rng rng(60309);
    Memory mem = Memory::random(4, rng);
    QueryCircuit qc = VirtualQram(3, 1).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(4));
    GateNoise depol(PauliRates::depolarizing(3e-3));
    est.setReplayBatch(16);

    FidelityResult ref;
    bool first = true;
    for (simd::Tier tier : supportedTiers()) {
        SCOPED_TRACE(simd::tierName(tier));
        TierGuard guard(tier);
        const FidelityResult r = est.estimate(depol, 48, 2023);
        if (first) {
            ref = r;
            first = false;
            continue;
        }
        expectResultsEq(r, ref);
    }
}

} // namespace
} // namespace qramsim
