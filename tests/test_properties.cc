/**
 * @file
 * Property-based suites over the whole stack:
 *
 *  - differential testing: the Feynman-path simulator against a dense
 *    statevector simulator (implemented here) on random reversible
 *    circuits with diagonal gates;
 *  - algebraic query properties: every architecture's query circuit is
 *    an involution (running it twice is the identity), acquires no
 *    phase, and acts as a pure permutation of basis states;
 *  - statistical properties of the noise models;
 *  - lazy-swapping expectation on random data (the paper's ~p = 0.5
 *    argument in Sec. 3.2.2).
 */

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "analysis/lightcone.hh"
#include "qram/baselines.hh"
#include "qram/bucket_brigade.hh"
#include "qram/compact.hh"
#include "qram/fanout.hh"
#include "qram/select_swap.hh"
#include "qram/virtual_qram.hh"
#include "sim/dense.hh"
#include "sim/feynman.hh"
#include "sim/fidelity.hh"
#include "sim/noise.hh"

namespace qramsim {
namespace {

/** Dense statevector simulator for <= 12 qubits (test oracle only). */
class DenseSim
{
  public:
    explicit DenseSim(std::size_t nqubits)
        : n(nqubits), amps(std::size_t(1) << nqubits, {0.0, 0.0})
    {
        amps[0] = {1.0, 0.0};
    }

    void
    setBasis(std::uint64_t s)
    {
        for (auto &a : amps)
            a = {0.0, 0.0};
        amps[s] = {1.0, 0.0};
    }

    void
    apply(const Gate &g)
    {
        if (g.kind == GateKind::Barrier)
            return;
        const std::size_t dim = amps.size();
        std::vector<std::complex<double>> next = amps;
        for (std::size_t s = 0; s < dim; ++s) {
            if (amps[s] == std::complex<double>{0.0, 0.0})
                continue;
            bool fire = true;
            for (std::size_t i = 0; i < g.controls.size(); ++i) {
                bool want = !g.negControl(i);
                if (bool((s >> g.controls[i]) & 1) != want) {
                    fire = false;
                    break;
                }
            }
            if (!fire)
                continue;
            switch (g.kind) {
              case GateKind::X: {
                std::size_t t = s ^ (std::size_t(1) << g.targets[0]);
                next[t] += amps[s];
                next[s] -= amps[s];
                break;
              }
              case GateKind::Z:
                if ((s >> g.targets[0]) & 1)
                    next[s] -= 2.0 * amps[s];
                break;
              case GateKind::Swap: {
                bool b0 = (s >> g.targets[0]) & 1;
                bool b1 = (s >> g.targets[1]) & 1;
                if (b0 != b1) {
                    std::size_t t =
                        s ^ (std::size_t(1) << g.targets[0]) ^
                        (std::size_t(1) << g.targets[1]);
                    next[t] += amps[s];
                    next[s] -= amps[s];
                }
                break;
              }
              default:
                FAIL() << "unsupported oracle gate";
            }
        }
        amps = std::move(next);
    }

    /** The single nonzero basis state (valid for permutation circuits). */
    std::uint64_t
    basisState(std::complex<double> &phase) const
    {
        for (std::size_t s = 0; s < amps.size(); ++s) {
            if (std::abs(amps[s]) > 1e-9) {
                phase = amps[s];
                return s;
            }
        }
        ADD_FAILURE() << "no basis state found";
        return 0;
    }

  private:
    std::size_t n;
    std::vector<std::complex<double>> amps;
};

/** Random reversible circuit over @p n qubits. */
Circuit
randomReversible(std::size_t n, std::size_t gates, Rng &rng)
{
    Circuit c;
    auto q = c.allocRegister(n, "q");
    for (std::size_t g = 0; g < gates; ++g) {
        auto pick = [&]() {
            return q[rng.below(n)];
        };
        auto pickDistinct = [&](std::vector<Qubit> used) {
            Qubit x = pick();
            while (std::find(used.begin(), used.end(), x) != used.end())
                x = pick();
            return x;
        };
        switch (rng.below(7)) {
          case 0: c.x(pick()); break;
          case 1: c.z(pick()); break;
          case 2: {
            Qubit a = pick(), b = pickDistinct({a});
            c.cx(a, b);
            break;
          }
          case 3: {
            Qubit a = pick(), b = pickDistinct({a});
            c.cx0(a, b);
            break;
          }
          case 4: {
            Qubit a = pick(), b = pickDistinct({a});
            c.swap(a, b);
            break;
          }
          case 5: {
            Qubit a = pick(), b = pickDistinct({a});
            Qubit d = pickDistinct({a, b});
            c.cswap(a, b, d);
            break;
          }
          default: {
            Qubit a = pick(), b = pickDistinct({a});
            Qubit d = pickDistinct({a, b});
            c.ccx(a, b, d);
            break;
          }
        }
    }
    return c;
}

TEST(Differential, FeynmanMatchesDenseOnRandomCircuits)
{
    Rng rng(2024);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = 3 + rng.below(6); // 3..8 qubits
        Circuit c = randomReversible(n, 40, rng);
        FeynmanExecutor exec(c);
        DenseSim dense(n);
        for (int probe = 0; probe < 8; ++probe) {
            std::uint64_t s = rng.below(std::uint64_t(1) << n);
            PathState in(n);
            in.bits.deposit(0, n, s);
            PathState out = exec.runIdeal(in);

            dense.setBasis(s);
            for (const Gate &g : c.gates())
                dense.apply(g);
            std::complex<double> phase;
            std::uint64_t ds = dense.basisState(phase);
            EXPECT_EQ(out.bits.extract(0, n), ds)
                << "trial " << trial << " probe " << probe;
            EXPECT_NEAR(std::abs(phase - out.phase), 0.0, 1e-9);
        }
    }
}

TEST(Differential, NoisyFeynmanMatchesDenseWithInjectedPaulis)
{
    Rng rng(77);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = 4;
        Circuit c = randomReversible(n, 20, rng);
        FeynmanExecutor exec(c);

        // Inject one X and one Z at fixed gates; build the equivalent
        // circuit with explicit gates for the oracle.
        ErrorRealization errs;
        errs.afterGate.resize(c.numGates());
        std::uint32_t qx = static_cast<std::uint32_t>(rng.below(n));
        std::uint32_t qz = static_cast<std::uint32_t>(rng.below(n));
        std::size_t gx = rng.below(c.numGates());
        std::size_t gz = rng.below(c.numGates());
        errs.afterGate[gx].push_back({qx, PauliKind::X});
        errs.afterGate[gz].push_back({qz, PauliKind::Z});

        // Oracle: interleave explicit X/Z gates. Note the executor
        // applies in schedule order; rebuild an equivalent program
        // order by attaching after the same gate index.
        Circuit noisy;
        noisy.allocRegister(n, "q");
        ExecutionOrder eo = executionOrder(scheduleAsap(c));
        for (std::size_t gi : eo.order) {
            noisy.pushGate(c.gates()[gi]);
            if (gi == gx)
                noisy.x(qx);
            if (gi == gz)
                noisy.z(qz);
        }

        for (int probe = 0; probe < 4; ++probe) {
            std::uint64_t s = rng.below(std::uint64_t(1) << n);
            PathState in(n);
            in.bits.deposit(0, n, s);
            PathState out = exec.runNoisy(in, errs);

            DenseSim dense(n);
            dense.setBasis(s);
            for (const Gate &g : noisy.gates())
                dense.apply(g);
            std::complex<double> phase;
            std::uint64_t ds = dense.basisState(phase);
            EXPECT_EQ(out.bits.extract(0, n), ds);
            EXPECT_NEAR(std::abs(phase - out.phase), 0.0, 1e-9);
        }
    }
}

/**
 * Random basis-preserving Clifford+T circuit (adds the diagonal
 * S/T/Tdg/CZ family and wide MCX to randomReversible's gate set).
 */
Circuit
randomCliffordT(std::size_t n, std::size_t gates, Rng &rng)
{
    Circuit c;
    auto q = c.allocRegister(n, "q");
    for (std::size_t g = 0; g < gates; ++g) {
        auto pick = [&]() { return q[rng.below(n)]; };
        auto pickDistinct = [&](std::vector<Qubit> used) {
            Qubit x = pick();
            while (std::find(used.begin(), used.end(), x) != used.end())
                x = pick();
            return x;
        };
        switch (rng.below(12)) {
          case 0: c.x(pick()); break;
          case 1: c.z(pick()); break;
          case 2: c.s(pick()); break;
          case 3: c.t(pick()); break;
          case 4: c.tdg(pick()); break;
          case 5: {
            Qubit a = pick(), b = pickDistinct({a});
            c.cz(a, b);
            break;
          }
          case 6: {
            Qubit a = pick(), b = pickDistinct({a});
            c.cx(a, b);
            break;
          }
          case 7: {
            Qubit a = pick(), b = pickDistinct({a});
            c.cx0(a, b);
            break;
          }
          case 8: {
            Qubit a = pick(), b = pickDistinct({a});
            c.swap(a, b);
            break;
          }
          case 9: {
            Qubit a = pick(), b = pickDistinct({a});
            Qubit d = pickDistinct({a, b});
            c.cswap(a, b, d);
            break;
          }
          case 10: {
            Qubit a = pick(), b = pickDistinct({a});
            Qubit d = pickDistinct({a, b});
            c.mcx({a, b}, rng.below(4), d);
            break;
          }
          default: {
            Qubit a = pick(), b = pickDistinct({a});
            Qubit d = pickDistinct({a, b});
            c.ccx(a, b, d);
            break;
          }
        }
    }
    return c;
}

TEST(Differential, CompiledMatchesDenseOnRandomCliffordT)
{
    // Cross-check the compiled Feynman engine against the full dense
    // statevector simulator (sim/dense.hh) on randomized <= 12-qubit
    // Clifford+T circuits: a basis input must land on one basis state
    // whose amplitude equals the accumulated path phase.
    Rng rng(60221023);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 3 + rng.below(10); // 3..12 qubits
        Circuit c = randomCliffordT(n, 60, rng);
        FeynmanExecutor exec(c);
        DenseStatevector dense(n);
        for (int probe = 0; probe < 4; ++probe) {
            std::uint64_t s = rng.below(std::uint64_t(1) << n);
            PathState in(n);
            in.bits.deposit(0, n, s);
            PathState out = exec.runIdeal(in);
            PathState ref = exec.runIdealReference(in);
            EXPECT_EQ(out.bits, ref.bits);
            EXPECT_EQ(out.phase, ref.phase);

            dense.setBasis(s);
            dense.apply(c);
            const std::uint64_t ds = out.bits.extract(0, n);
            EXPECT_NEAR(std::abs(dense.amplitude(ds) - out.phase), 0.0,
                        1e-9)
                << "trial " << trial << " probe " << probe;
            EXPECT_NEAR(dense.norm(), 1.0, 1e-9);
        }
    }
}

TEST(Lightcone, PureZInjectionsNeverGainAnXComponent)
{
    // The invariant behind the estimator's Z-only replay window: no
    // gate in the reversible set maps a Z error component onto an X
    // component, so Z-only realizations can never move a basis state.
    Rng rng(808017);
    Memory mem = Memory::random(4, rng);
    QueryCircuit qc = VirtualQram(3, 1).build(mem);
    const auto &gates = qc.circuit.gates();
    for (int probe = 0; probe < 40; ++probe) {
        std::size_t gi = rng.below(gates.size());
        const Gate &g = gates[gi];
        if (g.kind == GateKind::Barrier)
            continue;
        Qubit q = g.targets.empty() ? g.controls[0] : g.targets[0];
        Lightcone cone =
            propagatePauli(qc.circuit, gi, q, PauliKind::Z);
        EXPECT_EQ(cone.xSize(), 0u)
            << "Z injected after gate " << gi << " on qubit " << q;
    }
}

// --- Algebraic query properties --------------------------------------

void
expectInvolution(const QueryArchitecture &arch, const Memory &mem,
                 Rng &rng)
{
    QueryCircuit qc = arch.build(mem);
    Circuit doubled;
    doubled.allocRegister(qc.circuit.numQubits(), "q");
    doubled.append(qc.circuit);
    doubled.append(qc.circuit);
    FeynmanExecutor exec(doubled);
    for (int probe = 0; probe < 8; ++probe) {
        std::uint64_t i = rng.below(mem.size());
        PathState in(doubled.numQubits());
        for (unsigned b = 0; b < arch.addressWidth(); ++b)
            in.bits.set(qc.addressQubits[b], (i >> b) & 1);
        PathState out = exec.runIdeal(in);
        EXPECT_EQ(out.bits, in.bits)
            << arch.name() << " is not an involution at address " << i;
    }
}

TEST(QueryAlgebra, EveryArchitectureIsAnInvolution)
{
    Rng rng(31337);
    Memory mem3 = Memory::random(3, rng);
    Memory mem4 = Memory::random(4, rng);
    expectInvolution(VirtualQram(2, 1), mem3, rng);
    expectInvolution(VirtualQram(3, 1), mem4, rng);
    expectInvolution(BucketBrigadeQram(3), mem3, rng);
    expectInvolution(FanoutQram(3), mem3, rng);
    expectInvolution(SqcBucketBrigade(2, 1), mem3, rng);
    expectInvolution(SelectSwapQram(2, 1), mem3, rng);
    expectInvolution(CompactQram(2, 1), mem3, rng);
}

TEST(QueryAlgebra, QueryOnRandomSuperpositionPreservesNorm)
{
    // Permutation circuits keep amplitudes; check the executor's
    // bookkeeping against a random-amplitude input.
    Rng rng(404);
    Memory mem = Memory::random(4, rng);
    QueryCircuit qc = VirtualQram(3, 1).build(mem);
    AddressSuperposition in = AddressSuperposition::random(4, rng);
    FeynmanExecutor exec(qc.circuit);
    double norm = 0.0;
    for (std::size_t p = 0; p < in.size(); ++p) {
        PathState ps(qc.circuit.numQubits());
        for (unsigned b = 0; b < 4; ++b)
            ps.bits.set(qc.addressQubits[b],
                        (in.addresses[p] >> b) & 1);
        PathState out = exec.runIdeal(ps);
        norm += std::norm(in.amps[p] * out.phase);
    }
    EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(QueryAlgebra, ConsecutiveQueriesXorOntoTheBus)
{
    // Register allocation is deterministic, so two builds of the same
    // architecture share a layout; appending the circuits queries two
    // different tables back to back and the bus accumulates
    // x1_i XOR x2_i — the parity-of-two-tables pattern.
    Rng rng(515);
    Memory mem1 = Memory::random(4, rng);
    Memory mem2 = Memory::random(4, rng);
    VirtualQram arch(3, 1);
    QueryCircuit q1 = arch.build(mem1);
    QueryCircuit q2 = arch.build(mem2);
    ASSERT_EQ(q1.circuit.numQubits(), q2.circuit.numQubits());
    ASSERT_EQ(q1.busQubit, q2.busQubit);

    Circuit combo;
    combo.allocRegister(q1.circuit.numQubits(), "q");
    combo.append(q1.circuit);
    combo.append(q2.circuit);
    FeynmanExecutor exec(combo);
    for (std::uint64_t i = 0; i < mem1.size(); ++i) {
        PathState in(combo.numQubits());
        for (unsigned b = 0; b < 4; ++b)
            in.bits.set(q1.addressQubits[b], (i >> b) & 1);
        PathState out = exec.runIdeal(in);
        EXPECT_EQ(out.bits.get(q1.busQubit),
                  mem1.bit(i) ^ mem2.bit(i))
            << "address " << i;
    }
}

// --- Noise statistics --------------------------------------------------

TEST(NoiseStats, RoundBasedChannelScalesLinearly)
{
    Circuit c;
    auto q = c.allocRegister(20, "q");
    for (int i = 0; i < 19; ++i)
        c.cx(q[i], q[i + 1]);
    FeynmanExecutor exec(c);
    Rng rng(55);
    auto countEvents = [&](unsigned rounds, std::size_t samples) {
        QubitChannelNoise noise(PauliRates::phaseFlip(0.05), rounds);
        std::size_t total = 0;
        for (std::size_t s = 0; s < samples; ++s) {
            auto real = noise.sample(exec, rng);
            for (const auto &v : real.afterMoment)
                total += v.size();
        }
        return double(total) / double(samples);
    };
    double r4 = countEvents(4, 400);
    double r8 = countEvents(8, 400);
    EXPECT_NEAR(r8 / r4, 2.0, 0.25);
    EXPECT_NEAR(r4, 4 * 20 * 0.05, 0.8);
}

TEST(NoiseStats, WeightedGateNoiseChargesCswapMore)
{
    Circuit cheap, costly;
    auto q1 = cheap.allocRegister(3, "q");
    auto q2 = costly.allocRegister(3, "q");
    for (int i = 0; i < 50; ++i) {
        cheap.cx(q1[0], q1[1]);
        costly.cswap(q2[0], q2[1], q2[2]);
    }
    FeynmanExecutor e1(cheap), e2(costly);
    Rng rng(66);
    auto meanEvents = [&](const FeynmanExecutor &e) {
        GateNoise noise(PauliRates::bitFlip(0.01), true);
        std::size_t total = 0;
        for (int s = 0; s < 300; ++s) {
            auto real = noise.sample(e, rng);
            for (const auto &v : real.afterGate)
                total += v.size();
        }
        return double(total) / 300.0;
    };
    // CSWAP weight (8 CX) vs CX weight (1): ~8x more error events
    // before saturation, and 1.5x more operands.
    EXPECT_GT(meanEvents(e2), 5.0 * meanEvents(e1));
}

// --- Lazy swapping expectation (Sec. 3.2.2) ---------------------------

TEST(LazySwapping, HalvesClassicalTrafficOnRandomData)
{
    Rng rng(808);
    double totalLazy = 0, totalEager = 0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
        Memory mem = Memory::random(6, rng); // m=3, k=3
        VirtualQramOptions lazy, eager;
        eager.lazyDataSwapping = false;
        totalLazy += double(
            VirtualQram(3, 3, lazy).build(mem).circuit.countClassical());
        totalEager += double(VirtualQram(3, 3, eager)
                                 .build(mem)
                                 .circuit.countClassical());
    }
    // Expected ratio on uniform data: lazy ~ (2^m/2) * (2^k+1) loads
    // vs eager ~ 2 * 2^(m+k) / 2; about one half.
    double ratio = totalLazy / totalEager;
    EXPECT_GT(ratio, 0.35);
    EXPECT_LT(ratio, 0.65);
}

} // namespace
} // namespace qramsim
