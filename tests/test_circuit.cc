/**
 * @file
 * Unit tests for the circuit IR, scheduler and cost model.
 */

#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "circuit/cost_model.hh"
#include "circuit/schedule.hh"

namespace qramsim {
namespace {

TEST(Circuit, AllocationAndNames)
{
    Circuit c;
    Qubit a = c.allocQubit("alpha");
    auto reg = c.allocRegister(3, "r");
    EXPECT_EQ(c.numQubits(), 4u);
    EXPECT_EQ(c.qubitName(a), "alpha");
    EXPECT_EQ(c.qubitName(reg[2]), "r[2]");
}

TEST(Circuit, GateEmission)
{
    Circuit c;
    auto q = c.allocRegister(4, "q");
    c.x(q[0]);
    c.cx(q[0], q[1]);
    c.ccx(q[0], q[1], q[2]);
    c.cswap(q[0], q[1], q[2]);
    c.cswap0(q[0], q[1], q[2]);
    c.mcx({q[0], q[1], q[2]}, 0b101, q[3]);
    EXPECT_EQ(c.numGates(), 6u);
    const Gate &mcx = c.gates().back();
    EXPECT_EQ(mcx.controls.size(), 3u);
    EXPECT_FALSE(mcx.negControl(0)); // pattern bit 0 == 1 -> positive
    EXPECT_TRUE(mcx.negControl(1));  // pattern bit 1 == 0 -> negative
    EXPECT_FALSE(mcx.negControl(2));
}

TEST(Circuit, ClassicalGatesOnlyEmittedWhenConditionTrue)
{
    Circuit c;
    auto q = c.allocRegister(2, "q");
    c.classicalX(false, q[0]);
    c.classicalSwap(false, q[0], q[1]);
    EXPECT_EQ(c.numGates(), 0u);
    c.classicalX(true, q[0]);
    c.classicalSwap(true, q[0], q[1]);
    EXPECT_EQ(c.numGates(), 2u);
    EXPECT_EQ(c.countClassical(), 2u);
}

TEST(Circuit, ReversedRangeUndoesItself)
{
    Circuit c;
    auto q = c.allocRegister(3, "q");
    std::size_t b = c.numGates();
    c.x(q[0]);
    c.cx(q[0], q[1]);
    c.cswap(q[0], q[1], q[2]);
    std::size_t e = c.numGates();
    c.appendReversedRange(b, e);
    EXPECT_EQ(c.numGates(), 6u);
    // Last gate mirrors the first of the section in reverse order.
    EXPECT_EQ(c.gates()[5].kind, GateKind::X);
    EXPECT_EQ(c.gates()[3].kind, GateKind::Swap);
}

TEST(Schedule, ParallelGatesShareMoment)
{
    Circuit c;
    auto q = c.allocRegister(4, "q");
    c.x(q[0]);
    c.x(q[1]); // disjoint -> same moment
    c.cx(q[0], q[1]); // depends on both
    c.x(q[2]); // independent -> moment 0
    Schedule s = scheduleAsap(c);
    EXPECT_EQ(s.moment[0], 0);
    EXPECT_EQ(s.moment[1], 0);
    EXPECT_EQ(s.moment[2], 1);
    EXPECT_EQ(s.moment[3], 0);
    EXPECT_EQ(s.depth(), 2u);
}

TEST(Schedule, BarrierSynchronizes)
{
    Circuit c;
    auto q = c.allocRegister(2, "q");
    c.x(q[0]);
    c.barrier();
    c.x(q[1]); // would be moment 0 without the barrier
    Schedule s = scheduleAsap(c);
    EXPECT_EQ(s.moment[0], 0);
    EXPECT_EQ(s.moment[2], 1);
    EXPECT_EQ(s.depth(), 2u);
}

TEST(Schedule, SharedControlSerializes)
{
    Circuit c;
    auto q = c.allocRegister(3, "q");
    c.cx(q[0], q[1]);
    c.cx(q[0], q[2]); // same control -> must wait
    Schedule s = scheduleAsap(c);
    EXPECT_EQ(s.depth(), 2u);
}

TEST(CostModel, SingleGates)
{
    Gate x;
    x.kind = GateKind::X;
    x.targets = {0};
    Cost cx = gateCost(x);
    EXPECT_EQ(cx.tCount, 0u);
    EXPECT_EQ(cx.totalDepth, 1u);

    Gate t;
    t.kind = GateKind::T;
    t.targets = {0};
    EXPECT_EQ(gateCost(t).tCount, 1u);
}

TEST(CostModel, ToffoliConstants)
{
    Gate g;
    g.kind = GateKind::X;
    g.controls = {0, 1};
    g.targets = {2};
    Cost c = gateCost(g);
    EXPECT_EQ(c.tCount, 7u);
    EXPECT_EQ(c.tDepth, 3u);
    EXPECT_EQ(c.ancillae, 0u);
}

TEST(CostModel, CswapMatchesPaperQuote)
{
    // Sec. 2.2.1: CSWAP decomposes to depth 12, T depth 3, no ancillae.
    Gate g;
    g.kind = GateKind::Swap;
    g.controls = {0};
    g.targets = {1, 2};
    Cost c = gateCost(g);
    EXPECT_EQ(c.tCount, 7u);
    EXPECT_EQ(c.tDepth, 3u);
    EXPECT_EQ(c.totalDepth, 13u); // CX + depth-11 CCX + CX
    EXPECT_EQ(c.ancillae, 0u);
}

TEST(CostModel, McxLadderScaling)
{
    Gate g;
    g.kind = GateKind::X;
    g.controls = {0, 1, 2, 3, 4};
    g.targets = {5};
    Cost c = gateCost(g);
    // 2c-3 = 7 Toffolis for c = 5 controls.
    EXPECT_EQ(c.tCount, 7u * 7u);
    EXPECT_EQ(c.ancillae, 3u);
}

TEST(CostModel, CircuitAggregates)
{
    Circuit c;
    auto q = c.allocRegister(4, "q");
    c.ccx(q[0], q[1], q[2]);
    c.ccx(q[0], q[1], q[3]); // serialized on shared controls
    CircuitResources r = measureResources(c);
    EXPECT_EQ(r.qubits, 4u);
    EXPECT_EQ(r.gateCount, 2u);
    EXPECT_EQ(r.logicalDepth, 2u);
    EXPECT_EQ(r.tCount, 14u);
    EXPECT_EQ(r.tDepth, 6u); // two layers of T-depth 3
    EXPECT_EQ(r.mcxCount, 2u);
}

TEST(CostModel, ParallelLayerTDepthIsMax)
{
    Circuit c;
    auto q = c.allocRegister(6, "q");
    c.ccx(q[0], q[1], q[2]);
    c.ccx(q[3], q[4], q[5]); // disjoint: same moment
    CircuitResources r = measureResources(c);
    EXPECT_EQ(r.logicalDepth, 1u);
    EXPECT_EQ(r.tDepth, 3u); // layer cost is the max, not the sum
    EXPECT_EQ(r.tCount, 14u); // counts still add
}

} // namespace
} // namespace qramsim
