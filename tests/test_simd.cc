/**
 * @file
 * SIMD row-kernel and dispatch tests.
 *
 * The AVX2/AVX-512 kernels must be bit-identical to the scalar tier
 * on arbitrary row patterns (including non-vector-multiple widths and
 * partial valid masks), the PathEnsemble layout must deliver the
 * alignment/padding contract the kernels assume, and the whole engine
 * — ensemble propagation and the fidelity estimator, batched replay
 * and sweep sampling included — must produce bit-identical results at
 * every tier the host CPU supports. Tiers the CPU lacks are skipped
 * (the scalar tier always runs).
 */

#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <vector>

#include "common/pathensemble.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "qram/bucket_brigade.hh"
#include "qram/virtual_qram.hh"
#include "sim/fidelity.hh"

namespace qramsim {
namespace {

/** Restore the dispatch tier on scope exit. */
struct TierGuard
{
    simd::Tier prev;

    explicit TierGuard(simd::Tier t) : prev(simd::activeTier())
    {
        simd::setActiveTier(t);
    }

    ~TierGuard() { simd::setActiveTier(prev); }
};

std::vector<simd::Tier>
supportedTiers()
{
    std::vector<simd::Tier> tiers;
    for (simd::Tier t : {simd::Tier::Scalar, simd::Tier::Avx2,
                         simd::Tier::Avx512})
        if (simd::tierSupported(t))
            tiers.push_back(t);
    return tiers;
}

// --- Kernel-level bit identity ----------------------------------------

TEST(Simd, KernelsBitIdenticalAcrossTiersOnRandomRows)
{
    Rng rng(20260731);
    const simd::RowKernels &S = simd::kernels(simd::Tier::Scalar);

    for (simd::Tier tier : supportedTiers()) {
        if (tier == simd::Tier::Scalar)
            continue;
        SCOPED_TRACE(simd::tierName(tier));
        const simd::RowKernels &K = simd::kernels(tier);

        for (int trial = 0; trial < 200; ++trial) {
            // Widths straddle vector boundaries: 1..20 words covers
            // sub-AVX2, sub-AVX512 and unaligned-tail shapes.
            const std::size_t nw = 1 + rng.below(20);
            const std::size_t nrows = 4;
            simd::AlignedWords rows(nrows * nw);
            for (auto &w : rows)
                w = rng.bits();
            simd::AlignedWords vmask(nw);
            for (auto &w : vmask)
                w = rng.below(4) == 0 ? rng.bits() : ~std::uint64_t(0);

            EnsembleCtrl ctrls[3];
            const std::size_t nc = rng.below(4);
            for (std::size_t c = 0; c < nc; ++c)
                ctrls[c] = {static_cast<std::uint32_t>(
                                rng.below(nrows)),
                            rng.bernoulli(0.5) ? ~std::uint64_t(0)
                                               : std::uint64_t(0)};

            // xorFire
            simd::AlignedWords a(nw), b(nw);
            for (std::size_t w = 0; w < nw; ++w)
                a[w] = b[w] = rng.bits();
            S.xorFire(a.data(), rows.data(), nw, ctrls, nc,
                      vmask.data(), nw);
            K.xorFire(b.data(), rows.data(), nw, ctrls, nc,
                      vmask.data(), nw);
            EXPECT_EQ(a, b);

            // swapFire
            simd::AlignedWords a0(nw), a1(nw), b0(nw), b1(nw);
            for (std::size_t w = 0; w < nw; ++w) {
                a0[w] = b0[w] = rng.bits();
                a1[w] = b1[w] = rng.bits();
            }
            S.swapFire(a0.data(), a1.data(), rows.data(), nw, ctrls,
                       nc, vmask.data(), nw);
            K.swapFire(b0.data(), b1.data(), rows.data(), nw, ctrls,
                       nc, vmask.data(), nw);
            EXPECT_EQ(a0, b0);
            EXPECT_EQ(a1, b1);

            // xorRow
            for (std::size_t w = 0; w < nw; ++w)
                a[w] = b[w] = rng.bits();
            S.xorRow(a.data(), rows.data(), nw);
            K.xorRow(b.data(), rows.data(), nw);
            EXPECT_EQ(a, b);

            // diffOr: accumulated mask and return value
            simd::AlignedWords devA(nw), devB(nw);
            for (std::size_t w = 0; w < nw; ++w)
                devA[w] = devB[w] = rng.bits();
            const std::uint64_t *x = rows.data();
            const std::uint64_t *y = rows.data() + nw;
            const std::uint64_t anyA =
                S.diffOr(devA.data(), x, y, nw);
            const std::uint64_t anyB =
                K.diffOr(devB.data(), x, y, nw);
            EXPECT_EQ(devA, devB);
            EXPECT_EQ(anyA, anyB);

            // diffOr on identical rows must report no deviation.
            EXPECT_EQ(S.diffOr(devA.data(), x, x, nw),
                      K.diffOr(devB.data(), x, x, nw));
            EXPECT_EQ(S.diffOr(devA.data(), x, x, nw), 0u);
        }
    }
}

// --- Layout contract --------------------------------------------------

TEST(Simd, PathEnsembleRowsAlignedAndPadded)
{
    for (std::size_t np : {std::size_t(1), std::size_t(63),
                           std::size_t(64), std::size_t(65),
                           std::size_t(127), std::size_t(128),
                           std::size_t(200), std::size_t(513)}) {
        SCOPED_TRACE(np);
        PathEnsemble ens(10, np);
        EXPECT_EQ(ens.dataWords(), (np + 63) / 64);
        EXPECT_EQ(ens.wordsPerQubit() % simd::kRowAlignWords, 0u);
        EXPECT_GE(ens.wordsPerQubit(), ens.dataWords());
        for (std::size_t q = 0; q < ens.numQubits(); ++q)
            EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ens.row(q)) %
                          simd::kRowAlign,
                      0u);
        for (std::size_t w = 0; w < ens.wordsPerQubit(); ++w)
            EXPECT_EQ(ens.validMaskRow()[w], ens.validMask(w));
        for (std::size_t w = ens.dataWords();
             w < ens.wordsPerQubit(); ++w)
            EXPECT_EQ(ens.validMask(w), 0u);
    }
}

TEST(Simd, TailAndPaddingStayZeroThroughPropagation)
{
    // Paths not a multiple of 64 leave tail bits in the last data
    // word and whole padding words; both must stay zero through noisy
    // ensemble propagation at every tier.
    Rng rng(4242);
    Memory mem = Memory::random(3, rng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FeynmanExecutor exec(qc.circuit);
    GateNoise noise(PauliRates::depolarizing(0.02));

    for (std::size_t np : {std::size_t(3), std::size_t(65),
                           std::size_t(70)}) {
        PathEnsemble in(qc.circuit.numQubits(), np);
        for (std::size_t k = 0; k < np; ++k)
            for (unsigned b = 0; b < 3; ++b)
                in.set(qc.addressQubits[b], k, (k >> b) & 1);

        for (simd::Tier tier : supportedTiers()) {
            SCOPED_TRACE(simd::tierName(tier));
            TierGuard guard(tier);
            ErrorRealization errors = noise.sample(exec, rng);
            FlatRealization flat;
            exec.flatten(errors, flat);
            PathEnsemble out = exec.runFlatEnsemble(in, flat);
            for (std::size_t q = 0; q < out.numQubits(); ++q)
                for (std::size_t w = 0; w < out.wordsPerQubit(); ++w)
                    EXPECT_EQ(out.row(q)[w] & ~out.validMask(w), 0u)
                        << "q=" << q << " w=" << w;
        }
    }
}

// --- Engine-level bit identity across tiers ---------------------------

TEST(Simd, EnsemblePropagationBitIdenticalAcrossTiers)
{
    Rng rng(90125);
    Memory mem = Memory::random(3, rng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FeynmanExecutor exec(qc.circuit);
    const std::size_t nq = qc.circuit.numQubits();
    GateNoise noise(PauliRates::depolarizing(5e-3));

    // 65 paths: duplicate some addresses so the tail word is in play.
    const std::size_t np = 65;
    std::vector<PathState> inputs;
    PathEnsemble in(nq, np);
    for (std::size_t k = 0; k < np; ++k) {
        PathState p(nq);
        for (unsigned b = 0; b < 3; ++b)
            p.bits.set(qc.addressQubits[b], (k >> b) & 1);
        in.scatterPath(k, p.bits);
        inputs.push_back(std::move(p));
    }

    for (int shot = 0; shot < 4; ++shot) {
        ErrorRealization errors = noise.sample(exec, rng);
        FlatRealization flat;
        exec.flatten(errors, flat);

        BitVec gathered(nq);
        for (simd::Tier tier : supportedTiers()) {
            SCOPED_TRACE(simd::tierName(tier));
            TierGuard guard(tier);
            PathEnsemble out = exec.runFlatEnsemble(in, flat);
            for (std::size_t k = 0; k < np; ++k) {
                PathState ref =
                    exec.runNoisyReference(inputs[k], errors);
                out.gatherPath(k, gathered);
                EXPECT_EQ(gathered, ref.bits) << "path " << k;
                EXPECT_EQ(out.phase(k), ref.phase) << "path " << k;
            }
        }
    }
}

TEST(Simd, EstimatorBitIdenticalAcrossTiers)
{
    // Fixed-seed estimates (empty, Z-only and batched general replay
    // paths all exercised) must not depend on the dispatch tier.
    Rng rng(60309);
    Memory mem = Memory::random(4, rng);
    QueryCircuit qc = VirtualQram(3, 1).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(4));
    GateNoise depol(PauliRates::depolarizing(3e-3));
    QubitChannelNoise zchan(PauliRates::phaseFlip(2e-3));

    FidelityResult depolRef, zRef;
    bool first = true;
    for (simd::Tier tier : supportedTiers()) {
        SCOPED_TRACE(simd::tierName(tier));
        TierGuard guard(tier);
        FidelityResult d = est.estimate(depol, 48, 2023);
        FidelityResult z = est.estimate(zchan, 48, 2024);
        if (first) {
            depolRef = d;
            zRef = z;
            first = false;
            continue;
        }
        EXPECT_EQ(d.full, depolRef.full);
        EXPECT_EQ(d.reduced, depolRef.reduced);
        EXPECT_EQ(d.fullStderr, depolRef.fullStderr);
        EXPECT_EQ(z.full, zRef.full);
        EXPECT_EQ(z.reduced, zRef.reduced);
        EXPECT_EQ(z.reducedStderr, zRef.reducedStderr);
    }
}

// --- Batched replay and sweep sampling --------------------------------

TEST(Simd, BatchedEstimateIdenticalToPerShotLoop)
{
    // estimate() samples shots ahead and replays general realizations
    // in batched ensemble passes; the result must match a manual
    // shot-by-shot loop (same RNG stream, same reduction order) bit
    // for bit — threaded mode included (thread-count invariance).
    Rng rng(5150);
    Memory mem = Memory::random(4, rng);
    QueryCircuit qc = VirtualQram(3, 1).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(4));
    GateNoise noise(PauliRates::depolarizing(4e-3));

    const std::size_t shots = 160; // > kShotChunk: several chunks
    const std::uint64_t seed = 31337;

    noise.prepare(est.executor());
    Rng shotRng(seed);
    FlatRealization errors;
    double sumF = 0.0, sumF2 = 0.0, sumR = 0.0, sumR2 = 0.0;
    for (std::size_t s = 0; s < shots; ++s) {
        noise.sampleFlat(est.executor(), shotRng, errors);
        double f = 0.0, r = 0.0;
        est.shotFidelity(errors, f, r);
        sumF += f;
        sumF2 += f * f;
        sumR += r;
        sumR2 += r * r;
    }
    const double n = static_cast<double>(shots);

    FidelityResult batched = est.estimate(noise, shots, seed);
    EXPECT_EQ(batched.full, sumF / n);
    EXPECT_EQ(batched.reduced, sumR / n);

    FidelityResult mt2 = est.estimate(noise, shots, seed, 2);
    FidelityResult mt4 = est.estimate(noise, shots, seed, 4);
    EXPECT_EQ(mt2.full, mt4.full);
    EXPECT_EQ(mt2.reduced, mt4.reduced);
    EXPECT_EQ(mt2.fullStderr, mt4.fullStderr);
}

TEST(Simd, SweepPointsMatchScaledEstimatesBitForBit)
{
    // Every point of estimateSweep must equal estimate() with the
    // rates scaled by that point's factor: the sweep draws the same
    // uniforms and compares them against identically computed
    // thresholds.
    Rng rng(8086);
    Memory mem = Memory::random(3, rng);
    QueryCircuit qc = VirtualQram(2, 1).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(3));

    const PauliRates base{1e-3, 5e-4, 2e-3};
    const unsigned rounds = QubitChannelNoise::virtualQramRounds(2, 1);
    QubitChannelNoise noise(base, rounds);

    const std::vector<double> factors = {1.0, 0.1, 3.0};
    const std::size_t shots = 96;
    const std::uint64_t seed = 777;

    std::vector<FidelityResult> sweep =
        est.estimateSweep(noise, factors, shots, seed);
    ASSERT_EQ(sweep.size(), factors.size());
    for (std::size_t j = 0; j < factors.size(); ++j) {
        SCOPED_TRACE(factors[j]);
        QubitChannelNoise scaled(base.scaled(factors[j]), rounds);
        FidelityResult ref = est.estimate(scaled, shots, seed);
        EXPECT_EQ(sweep[j].full, ref.full);
        EXPECT_EQ(sweep[j].reduced, ref.reduced);
        EXPECT_EQ(sweep[j].fullStderr, ref.fullStderr);
        EXPECT_EQ(sweep[j].reducedStderr, ref.reducedStderr);
    }

    // Threaded sweep: per-shot counter streams, so each point matches
    // the threaded scaled estimate bit for bit too.
    std::vector<FidelityResult> sweepMt =
        est.estimateSweep(noise, factors, shots, seed, 3);
    for (std::size_t j = 0; j < factors.size(); ++j) {
        QubitChannelNoise scaled(base.scaled(factors[j]), rounds);
        FidelityResult ref = est.estimate(scaled, shots, seed, 3);
        EXPECT_EQ(sweepMt[j].full, ref.full);
        EXPECT_EQ(sweepMt[j].reduced, ref.reduced);
    }
}

} // namespace
} // namespace qramsim
