/**
 * @file
 * Pipelined-execution tests (the QRAMSIM_PIPELINE / setPipeline
 * executor of sim/fidelity.hh and the common/threadpool.hh it runs
 * on): bit-identity of the pipelined vs the phase-sequential path
 * across all architectures, noise channels, replay engines, SIMD
 * tiers, thread counts and batch widths; shard-merge identity with
 * the pipeline on; pool lifecycle (reuse across estimates, clean
 * shutdown, exception propagation out of a stage); and the strict
 * env parsing behind the knobs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/threadpool.hh"
#include "qram/baselines.hh"
#include "qram/bucket_brigade.hh"
#include "qram/compact.hh"
#include "qram/fanout.hh"
#include "qram/select_swap.hh"
#include "qram/virtual_qram.hh"
#include "sim/fidelity.hh"
#include "sim/noise.hh"
#include "sim/sharding.hh"

namespace qramsim {
namespace {

void
expectResultsEq(const FidelityResult &a, const FidelityResult &b)
{
    EXPECT_EQ(a.full, b.full);
    EXPECT_EQ(a.reduced, b.reduced);
    EXPECT_EQ(a.fullStderr, b.fullStderr);
    EXPECT_EQ(a.reducedStderr, b.reducedStderr);
    EXPECT_EQ(a.shots, b.shots);
}

void
expectResultsEq(const std::vector<FidelityResult> &a,
                const std::vector<FidelityResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectResultsEq(a[i], b[i]);
    }
}

/** Restore the dispatch tier on scope exit. */
struct TierGuard
{
    simd::Tier prev;
    explicit TierGuard(simd::Tier t) : prev(simd::activeTier())
    {
        simd::setActiveTier(t);
    }
    ~TierGuard() { simd::setActiveTier(prev); }
};

std::vector<simd::Tier>
supportedTiers()
{
    std::vector<simd::Tier> tiers;
    for (simd::Tier t : {simd::Tier::Scalar, simd::Tier::Avx2,
                         simd::Tier::Avx512})
        if (simd::tierSupported(t))
            tiers.push_back(t);
    return tiers;
}

// --- Bit-identity matrix -----------------------------------------------

TEST(Pipeline, BitIdenticalAllArchitecturesNoiseAndThreadCounts)
{
    Rng rng(5551212);
    struct Arch
    {
        const char *name;
        QueryCircuit qc;
        unsigned width;
    };
    Memory mem3 = Memory::random(3, rng);
    Memory mem4 = Memory::random(4, rng);
    std::vector<Arch> archs;
    archs.push_back({"virtual", VirtualQram(2, 1).build(mem3), 3});
    archs.push_back({"bucket-brigade",
                     BucketBrigadeQram(3).build(mem3), 3});
    archs.push_back({"fanout", FanoutQram(3).build(mem3), 3});
    archs.push_back({"sqc", SqcBucketBrigade(2, 1).build(mem3), 3});
    archs.push_back({"select-swap",
                     SelectSwapQram(2, 1).build(mem3), 3});
    archs.push_back({"compact", CompactQram(2, 2).build(mem4), 4});

    struct NoiseCase
    {
        const char *name;
        PauliRates rates;
    };
    const NoiseCase noises[] = {
        {"X", PauliRates::bitFlip(4e-3)},
        {"Y", PauliRates{0.0, 4e-3, 0.0}},
        {"Z", PauliRates::phaseFlip(4e-3)},
        {"depol", PauliRates::depolarizing(4e-3)},
    };

    const std::size_t shots = 24;
    const std::uint64_t seed = 909;
    for (const Arch &a : archs) {
        FidelityEstimator est(a.qc.circuit, a.qc.addressQubits,
                              a.qc.busQubit,
                              AddressSuperposition::uniform(a.width));
        for (const NoiseCase &nc : noises) {
            QubitChannelNoise noise(nc.rates);
            for (unsigned threads : {1u, 2u, 7u}) {
                SCOPED_TRACE(std::string(a.name) + " / " + nc.name +
                             " / threads=" +
                             std::to_string(threads));
                est.setPipeline(false);
                const FidelityResult ref =
                    est.estimate(noise, shots, seed, threads);
                EXPECT_FALSE(est.lastPipelineStats().pipelined);
                est.setPipeline(true);
                const FidelityResult pip =
                    est.estimate(noise, shots, seed, threads);
                expectResultsEq(pip, ref);
                // The pipeline engages only where counter streams
                // allow out-of-order sampling.
                EXPECT_EQ(est.lastPipelineStats().pipelined,
                          threads >= 2);
            }
        }
    }
}

TEST(Pipeline, BitIdenticalAcrossEnginesAndSimdTiers)
{
    Rng rng(33);
    Memory mem = Memory::random(3, rng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(3));
    QubitChannelNoise noise(PauliRates::depolarizing(5e-3));
    const std::size_t shots = 24;
    const std::uint64_t seed = 41;

    const FidelityEstimator::ReplayEngine engines[] = {
        FidelityEstimator::ReplayEngine::Ensemble,
        FidelityEstimator::ReplayEngine::EnsembleSlots,
        FidelityEstimator::ReplayEngine::Scalar,
    };
    const char *engineNames[] = {"ensemble", "slots", "scalar"};

    // The cross-engine/tier oracle: phase-sequential block replay.
    est.setPipeline(false);
    const FidelityResult oracle = est.estimate(noise, shots, seed, 2);

    for (simd::Tier tier : supportedTiers()) {
        TierGuard guard(tier);
        for (std::size_t e = 0; e < 3; ++e) {
            est.setReplayEngine(engines[e]);
            for (unsigned threads : {2u, 7u}) {
                SCOPED_TRACE(std::string(simd::tierName(tier)) +
                             " / " + engineNames[e] + " / threads=" +
                             std::to_string(threads));
                est.setPipeline(true);
                const FidelityResult pip =
                    est.estimate(noise, shots, seed, threads);
                EXPECT_TRUE(est.lastPipelineStats().pipelined);
                expectResultsEq(pip, oracle);
            }
        }
    }
    est.setReplayEngine(FidelityEstimator::ReplayEngine::Ensemble);
}

TEST(Pipeline, BitIdenticalAtEveryBatchWidth)
{
    Rng rng(7);
    Memory mem = Memory::random(2, rng);
    QueryCircuit qc = FanoutQram(2).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(2));
    QubitChannelNoise noise(PauliRates::depolarizing(8e-3));
    const std::size_t shots = 48;
    const std::uint64_t seed = 12345;

    est.setPipeline(false);
    const FidelityResult ref = est.estimate(noise, shots, seed, 2);

    est.setPipeline(true);
    for (std::size_t width = 1; width <= 64; ++width) {
        SCOPED_TRACE("batch width " + std::to_string(width));
        ASSERT_EQ(est.setReplayBatch(width), width);
        expectResultsEq(est.estimate(noise, shots, seed, 2), ref);
    }
}

TEST(Pipeline, SweepBitIdenticalToPhaseSequential)
{
    Rng rng(99);
    Memory mem = Memory::random(3, rng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(3));
    const std::vector<double> factors = {0.5, 1.0, 2.0, 4.0};
    const std::size_t shots = 24;
    const std::uint64_t seed = 4242;

    GateNoise gate(PauliRates::depolarizing(2e-3), true);
    QubitChannelNoise qubit(PauliRates::bitFlip(3e-3));
    const NoiseModel *models[] = {&gate, &qubit};
    for (const NoiseModel *noise : models) {
        for (unsigned threads : {2u, 7u}) {
            SCOPED_TRACE(noise->name() + " / threads=" +
                         std::to_string(threads));
            est.setPipeline(false);
            const std::vector<FidelityResult> ref = est.estimateSweep(
                *noise, factors, shots, seed, threads);
            est.setPipeline(true);
            const std::vector<FidelityResult> pip = est.estimateSweep(
                *noise, factors, shots, seed, threads);
            EXPECT_TRUE(est.lastPipelineStats().pipelined);
            expectResultsEq(pip, ref);
        }
    }
}

// --- Sharding ----------------------------------------------------------

TEST(Pipeline, ShardMergeBitIdenticalWithPipelineOn)
{
    Rng rng(2024);
    Memory mem = Memory::random(3, rng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(3));
    QubitChannelNoise noise(PauliRates::depolarizing(4e-3));
    const std::size_t shots = 48;
    const std::uint64_t seed = 777;

    // The whole-range threaded run, phase-sequential: the oracle
    // every pipelined partition must reproduce bit for bit.
    est.setPipeline(false);
    const FidelityResult ref = est.estimate(noise, shots, seed, 2);
    est.setPipeline(true);

    ThreadPool shared(3);
    for (std::size_t nShards : {1u, 2u, 5u}) {
        SCOPED_TRACE("shards=" + std::to_string(nShards));
        SweepPlan plan = SweepPlan::partition(shots, nShards, seed);
        std::vector<PartialEstimate> parts;
        for (ShardSpec spec : plan.shards) {
            spec.threads = 2;
            // Exercise the caller-owned pool path on the odd shards.
            if (parts.size() % 2 == 1)
                spec.pool = &shared;
            parts.push_back(est.runShard(noise, spec));
        }
        PartialEstimate merged;
        std::string err;
        ASSERT_TRUE(mergePartials(std::move(parts), merged, &err))
            << err;
        expectResultsEq(merged.finalize().front(), ref);
    }
}

// --- Pool lifecycle ----------------------------------------------------

TEST(ThreadPool, ResolveThreadsRule)
{
    EXPECT_GE(hardwareThreads(), 1u);
    EXPECT_EQ(resolveThreads(0), hardwareThreads());
    EXPECT_EQ(resolveThreads(1), 1u);
    EXPECT_EQ(resolveThreads(7), 7u);
}

TEST(ThreadPool, DestructorDrainsTheQueue)
{
    std::atomic<int> ran{0};
    for (int round = 0; round < 10; ++round) {
        ThreadPool pool(3);
        EXPECT_EQ(pool.size(), 3u);
        for (int i = 0; i < 64; ++i)
            pool.post([&ran] { ++ran; });
        // No wait: destruction must still run every posted task.
    }
    EXPECT_EQ(ran.load(), 640);
}

TEST(ThreadPool, TaskGroupWaitsAndIsReusable)
{
    ThreadPool pool(4);
    TaskGroup group(pool);
    std::atomic<int> ran{0};
    for (int wave = 1; wave <= 3; ++wave) {
        for (int i = 0; i < 32; ++i)
            group.run([&ran] { ++ran; });
        group.wait();
        EXPECT_EQ(ran.load(), 32 * wave);
    }
}

TEST(ThreadPool, TaskGroupRethrowsTheFirstStageException)
{
    ThreadPool pool(2);
    TaskGroup group(pool);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
        group.run([&ran, i] {
            ++ran;
            if (i == 3)
                throw std::runtime_error("stage failure");
        });
    EXPECT_THROW(group.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 8); // every task still ran to completion
    // The error is consumed: the group is reusable afterwards.
    group.run([&ran] { ++ran; });
    group.wait();
    EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPool, EveryWorkerThrowingAtOnceNeitherLeaksNorDeadlocks)
{
    // The worst case for the capture path: every task on every worker
    // throws in the same wave, so the exception slot is contended from
    // all sides. wait() must report exactly one failure per wave and
    // leave the group and pool fully reusable.
    ThreadPool pool(4);
    TaskGroup group(pool);
    std::atomic<int> ran{0};
    for (int wave = 0; wave < 20; ++wave) {
        for (int i = 0; i < 32; ++i)
            group.run([&ran, i] {
                ++ran;
                throw std::runtime_error("task " + std::to_string(i));
            });
        EXPECT_THROW(group.wait(), std::runtime_error);
    }
    EXPECT_EQ(ran.load(), 20 * 32);
    // A clean wave after the storm: no stale captured error.
    group.run([&ran] { ++ran; });
    group.wait();
    EXPECT_EQ(ran.load(), 20 * 32 + 1);
}

TEST(ThreadPool, ConcurrentGroupsOnOneTaskPoolIsolateTheirFailures)
{
    // Several TaskGroups — the shape of several pipeline stages in
    // flight — share one pool, driven from independent caller threads.
    // A failure in one group must surface only on that group's wait()
    // and must not wedge or poison its siblings.
    ThreadPool pool(3);
    std::atomic<int> clean{0};
    std::atomic<int> faults{0};
    std::vector<std::thread> callers;
    for (int g = 0; g < 6; ++g)
        callers.emplace_back([&, g] {
            const bool throwing = (g % 2 == 0);
            TaskGroup group(pool);
            for (int round = 0; round < 8; ++round) {
                for (int i = 0; i < 16; ++i)
                    group.run([&, i] {
                        if (throwing && i == 7)
                            throw std::runtime_error("stage fault");
                        ++clean;
                    });
                try {
                    group.wait();
                    EXPECT_FALSE(throwing)
                        << "a throwing group's wait() came back clean";
                } catch (const std::runtime_error &) {
                    ++faults;
                    EXPECT_TRUE(throwing)
                        << "a clean group caught a sibling's fault";
                }
            }
        });
    for (std::thread &t : callers)
        t.join();
    EXPECT_EQ(faults.load(), 3 * 8);
    EXPECT_EQ(clean.load(), 6 * 8 * 16 - 3 * 8);
    // The pool outlives the storm and still runs ordinary work.
    TaskGroup after(pool);
    std::atomic<int> ran{0};
    for (int i = 0; i < 32; ++i)
        after.run([&ran] { ++ran; });
    after.wait();
    EXPECT_EQ(ran.load(), 32);
}

TEST(Pipeline, PersistentPoolReusedAcrossEstimates)
{
    Rng rng(11);
    Memory mem = Memory::random(3, rng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    QubitChannelNoise depol(PauliRates::depolarizing(4e-3));
    QubitChannelNoise flips(PauliRates::bitFlip(4e-3));

    // One estimator reusing its lazy pool across calls (including a
    // growth from 2 to 7 workers) must match fresh estimators.
    FidelityEstimator reused(qc.circuit, qc.addressQubits,
                             qc.busQubit,
                             AddressSuperposition::uniform(3));
    const struct
    {
        const NoiseModel *noise;
        unsigned threads;
    } calls[] = {{&depol, 2}, {&flips, 7}, {&depol, 2}, {&flips, 2}};
    for (const auto &c : calls) {
        FidelityEstimator fresh(qc.circuit, qc.addressQubits,
                                qc.busQubit,
                                AddressSuperposition::uniform(3));
        expectResultsEq(
            reused.estimate(*c.noise, 24, 5, c.threads),
            fresh.estimate(*c.noise, 24, 5, c.threads));
    }
}

/**
 * A noise model whose counter-stream sampler starts throwing after a
 * fixed number of shots — the stage-failure injector for the
 * exception-propagation contract: a throw inside a sampling task must
 * surface as an exception from estimate() on the calling thread, not
 * terminate the process or hang the coordinator.
 */
class ThrowingNoise : public NoiseModel
{
  public:
    ThrowingNoise(PauliRates rates, int okShots)
        : inner(rates), budget(okShots)
    {}

    ErrorRealization
    sample(const FeynmanExecutor &exec, Rng &rng) const override
    {
        return inner.sample(exec, rng);
    }

    void
    prepare(const FeynmanExecutor &exec) const override
    {
        inner.prepare(exec);
    }

    void
    sampleFlat(const FeynmanExecutor &exec, Rng &rng,
               FlatRealization &out) const override
    {
        inner.sampleFlat(exec, rng, out);
    }

    void
    sampleFlat(const FeynmanExecutor &exec, CounterRng &rng,
               FlatRealization &out) const override
    {
        if (++calls > budget)
            throw std::runtime_error("injected sampler failure");
        inner.sampleFlat(exec, rng, out);
    }

    std::string name() const override { return "throwing"; }

  private:
    QubitChannelNoise inner;
    int budget;
    mutable std::atomic<int> calls{0};
};

TEST(Pipeline, StageExceptionPropagatesToTheCaller)
{
    Rng rng(3);
    Memory mem = Memory::random(3, rng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(3));
    ThrowingNoise boom(PauliRates::depolarizing(4e-3), 40);

    est.setPipeline(true);
    EXPECT_THROW(est.estimate(boom, 256, 1, 3), std::runtime_error);
    // The non-pipelined threaded path propagates through TaskGroup
    // too (the old spawn/join loop would have std::terminate'd).
    est.setPipeline(false);
    EXPECT_THROW(est.estimate(boom, 256, 1, 3), std::runtime_error);
    // The estimator (and its pool) must remain usable afterwards.
    est.setPipeline(true);
    QubitChannelNoise fine(PauliRates::depolarizing(4e-3));
    const FidelityResult after = est.estimate(fine, 24, 5, 2);
    EXPECT_GT(after.shots, 0u);
}

// --- Knobs and env parsing ---------------------------------------------

TEST(Pipeline, EnvKnobSelectsTheExecutor)
{
    Rng rng(8);
    Memory mem = Memory::random(2, rng);
    QueryCircuit qc = FanoutQram(2).build(mem);
    auto make = [&] {
        return FidelityEstimator(qc.circuit, qc.addressQubits,
                                 qc.busQubit,
                                 AddressSuperposition::uniform(2));
    };

    ASSERT_EQ(setenv("QRAMSIM_PIPELINE", "0", 1), 0);
    EXPECT_FALSE(make().pipeline());
    ASSERT_EQ(setenv("QRAMSIM_PIPELINE", "on", 1), 0);
    EXPECT_TRUE(make().pipeline());
    // Garbage is rejected loudly and the default (on) kept.
    ASSERT_EQ(setenv("QRAMSIM_PIPELINE", "maybe", 1), 0);
    EXPECT_TRUE(make().pipeline());
    ASSERT_EQ(unsetenv("QRAMSIM_PIPELINE"), 0);
    FidelityEstimator est = make();
    EXPECT_TRUE(est.pipeline());
    EXPECT_FALSE(est.setPipeline(false));
    EXPECT_TRUE(est.setPipeline(true));
}

TEST(Pipeline, StrictEnvParsingRejectsGarbageAndOverflow)
{
    unsigned long v = 99;
    EXPECT_TRUE(env::parseUnsigned("0", 100, v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(env::parseUnsigned("100", 100, v));
    EXPECT_EQ(v, 100u);
    EXPECT_FALSE(env::parseUnsigned("101", 100, v));
    EXPECT_FALSE(env::parseUnsigned("", 100, v));
    EXPECT_FALSE(env::parseUnsigned(nullptr, 100, v));
    EXPECT_FALSE(env::parseUnsigned("-1", 100, v));
    EXPECT_FALSE(env::parseUnsigned("+7", 100, v));
    EXPECT_FALSE(env::parseUnsigned(" 7", 100, v));
    EXPECT_FALSE(env::parseUnsigned("7 ", 100, v));
    EXPECT_FALSE(env::parseUnsigned("7junk", 100, v));
    EXPECT_FALSE(env::parseUnsigned("0x10", 100, v));
    // Larger than unsigned long itself: must fail, not wrap.
    EXPECT_FALSE(env::parseUnsigned("99999999999999999999999999",
                                    ~0ul, v));
    EXPECT_TRUE(env::parseUnsigned("18446744073709551615", ~0ul, v));
    EXPECT_EQ(v, ~0ul);

    ASSERT_EQ(setenv("QRAMSIM_TEST_KNOB", "123", 1), 0);
    EXPECT_EQ(env::readUnsigned("QRAMSIM_TEST_KNOB", 1000),
              std::optional<unsigned long>(123));
    EXPECT_EQ(env::readUnsigned("QRAMSIM_TEST_KNOB", 100),
              std::nullopt);
    ASSERT_EQ(unsetenv("QRAMSIM_TEST_KNOB"), 0);
    EXPECT_EQ(env::readUnsigned("QRAMSIM_TEST_KNOB", 1000),
              std::nullopt);
}

TEST(Pipeline, StatsReportStagesAndOccupancy)
{
    Rng rng(21);
    Memory mem = Memory::random(3, rng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(3));
    QubitChannelNoise noise(PauliRates::depolarizing(1e-2));

    est.setPipeline(true);
    est.estimate(noise, 128, 9, 2);
    const PipelineStats st = est.lastPipelineStats();
    EXPECT_TRUE(st.pipelined);
    EXPECT_EQ(st.threads, 2u);
    EXPECT_GT(st.wallSec, 0.0);
    EXPECT_GT(st.sampleSec, 0.0);
    EXPECT_GT(st.batches, 0u);
    EXPECT_GT(st.busySec(), 0.0);
    EXPECT_GT(st.occupancy(), 0.0);

    est.setPipeline(false);
    est.estimate(noise, 64, 9, 2);
    EXPECT_FALSE(est.lastPipelineStats().pipelined);
    EXPECT_EQ(est.lastPipelineStats().threads, 2u);
}

} // namespace
} // namespace qramsim
