/**
 * @file
 * Work-stealing broker tests (sim/broker.hh + the qramsim_broker /
 * qramsim_server --broker / qramsim_drive --broker CLIs): wire
 * message and journal-line hardening (truncation corpora, torn-tail
 * tolerance, mid-file tamper rejection), the in-process Broker state
 * machine (submit/pull/commit/poll/fetch, duplicate cross-checks,
 * invalid-commit requeue, permanent-failure settling, dead-worker
 * and frozen-progress lease recovery, job parking, journal replay
 * across restarts), and the kill/steal/resume matrix end to end —
 * every disturbed run byte-identical to the undisturbed fork/exec
 * reference.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "sim/broker.hh"
#include "sim/server.hh"

namespace qramsim {
namespace {

std::string
readFileStr(const std::string &path)
{
    std::string out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return out;
    char buf[1 << 14];
    std::size_t nr;
    while ((nr = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, nr);
    std::fclose(f);
    return out;
}

bool
writeFileStr(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return std::fclose(f) == 0 && ok;
}

int
shCode(const std::string &cmd)
{
    const int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string
tempDir(const char *stem)
{
    const std::string dir = ::testing::TempDir() + stem + "_" +
                            std::to_string(
                                static_cast<unsigned>(getpid()));
    std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());
    return dir;
}

void
sleepMs(int ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/** One request through the broker's in-process dispatch. */
brk::Msg
ask(brk::Broker &b, const brk::Msg &req)
{
    brk::Msg resp;
    std::string err;
    EXPECT_TRUE(brk::parseMsg(b.handleMessage(brk::buildMsg(req)),
                              resp, &err))
        << err;
    return resp;
}

const std::vector<std::string> kJobArgs = {
    "--arch",  "bb",         "--m",     "4",   "--noise",
    "gate-depol", "--eps",   "2e-3",    "--shots", "32",
    "--seed",  "7",          "--factors", "0.5,1"};

brk::Msg
submitMsg(const char *fingerprint = "fp-test",
          std::uint64_t nshards = 2)
{
    brk::Msg m;
    m.type = "submit";
    m.fingerprint = fingerprint;
    m.nshards = nshards;
    m.args = kJobArgs;
    return m;
}

brk::Msg
pullMsg(const char *worker)
{
    brk::Msg m;
    m.type = "pull";
    m.worker = worker;
    return m;
}

/** The resident estimator the in-process tests share: assignment
 *  args go straight into Server::handle, exactly like a worker. */
srv::Server &
computeServer()
{
    static srv::Server *server = [] {
        srv::ServerConfig cfg;
        cfg.threads = 2;
        return new srv::Server(cfg);
    }();
    return *server;
}

/** Compute the assigned shard and commit it. Returns the ack. */
brk::Msg
computeAndCommit(brk::Broker &b, const brk::Msg &assign,
                 const char *worker)
{
    const srv::ShardResponse r = computeServer().handle(assign.args);
    EXPECT_EQ(0, r.status) << r.error;
    brk::Msg c;
    c.type = "commit";
    c.worker = worker;
    c.lease = assign.lease;
    c.job = assign.job;
    c.shard = assign.shard;
    c.status = static_cast<std::uint64_t>(r.status);
    c.error = r.error;
    c.payload = r.payload;
    return ask(b, c);
}

// --- Wire messages -----------------------------------------------------

TEST(BrokerMsg, EveryFieldRoundTrips)
{
    brk::Msg m;
    m.type = "assign";
    m.worker = "w\"quoted\\back\nline";
    m.job = "0123456789abcdef";
    m.fingerprint = "fp|seed=7";
    m.error = "none";
    m.payload = "{\"qramsim_partial\": 1}";
    m.lease = 42;
    m.shard = 3;
    m.nshards = 8;
    m.total = 6;
    m.status = 3;
    m.progress = 17;
    m.cancel = 1;
    m.accepted = 1;
    m.duplicate = 1;
    m.resumed = 1;
    m.complete = 1;
    m.jobFailed = 1;
    m.heartbeatSec = 0.25;
    m.pollSec = 0.05;
    m.args = {"--arch", "bb", "--shard", "3/8"};
    m.done = {0.0, 2.0, 5.0};
    m.failed = {1.0};
    brk::Msg back;
    std::string err;
    ASSERT_TRUE(brk::parseMsg(brk::buildMsg(m), back, &err)) << err;
    EXPECT_EQ(m.type, back.type);
    EXPECT_EQ(m.worker, back.worker);
    EXPECT_EQ(m.job, back.job);
    EXPECT_EQ(m.fingerprint, back.fingerprint);
    EXPECT_EQ(m.error, back.error);
    EXPECT_EQ(m.payload, back.payload);
    EXPECT_EQ(m.lease, back.lease);
    EXPECT_EQ(m.shard, back.shard);
    EXPECT_EQ(m.nshards, back.nshards);
    EXPECT_EQ(m.total, back.total);
    EXPECT_EQ(m.status, back.status);
    EXPECT_EQ(m.progress, back.progress);
    EXPECT_EQ(m.cancel, back.cancel);
    EXPECT_EQ(m.accepted, back.accepted);
    EXPECT_EQ(m.duplicate, back.duplicate);
    EXPECT_EQ(m.resumed, back.resumed);
    EXPECT_EQ(m.complete, back.complete);
    EXPECT_EQ(m.jobFailed, back.jobFailed);
    EXPECT_EQ(m.heartbeatSec, back.heartbeatSec);
    EXPECT_EQ(m.pollSec, back.pollSec);
    EXPECT_EQ(m.args, back.args);
    EXPECT_EQ(m.done, back.done);
    EXPECT_EQ(m.failed, back.failed);
}

TEST(BrokerMsg, TruncationCorpus)
{
    brk::Msg m;
    m.type = "commit";
    m.worker = "w1";
    m.payload = "{\"p\": 1}";
    m.args = {"--arch", "bb"};
    const std::string json = brk::buildMsg(m);
    const std::size_t lastBrace = json.rfind('}');
    ASSERT_NE(lastBrace, std::string::npos);
    for (std::size_t cut = 0; cut <= lastBrace; ++cut) {
        brk::Msg back;
        EXPECT_FALSE(brk::parseMsg(json.substr(0, cut), back))
            << "accepted a prefix of " << cut << " bytes";
    }
}

TEST(BrokerMsg, MagicAndTypeAreRequired)
{
    brk::Msg back;
    EXPECT_FALSE(
        brk::parseMsg("{\"type\": \"pull\", \"worker\": \"w\"}",
                      back))
        << "missing magic";
    EXPECT_FALSE(brk::parseMsg(
        "{\"qramsim_broker\": 1, \"worker\": \"w\"}", back))
        << "missing type";
    EXPECT_TRUE(brk::parseMsg(
        "{\"qramsim_broker\": 1, \"type\": \"pull\", "
        "\"future_key\": [1, 2]}",
        back))
        << "unknown keys are skipped for forward compatibility";
    // Booleans travel as 0/1; anything else is rejected.
    EXPECT_FALSE(brk::parseMsg(
        "{\"qramsim_broker\": 1, \"type\": \"ok\", \"cancel\": 2}",
        back));
}

TEST(BrokerMsg, ByteFlipNoCrashSweep)
{
    brk::Msg m;
    m.type = "assign";
    m.lease = 7;
    m.args = {"--arch", "bb", "--m", "4"};
    m.heartbeatSec = 0.5;
    const std::string json = brk::buildMsg(m);
    for (std::size_t i = 0; i < json.size(); ++i) {
        for (const unsigned char flip :
             {0x01u, 0x20u, 0x80u, 0xffu}) {
            std::string mut = json;
            mut[i] = static_cast<char>(mut[i] ^ flip);
            brk::Msg back;
            if (brk::parseMsg(mut, back)) {
                // Whatever still parses must respect the invariants
                // the protocol handlers rely on.
                EXPECT_LE(back.status, 255u);
                EXPECT_LE(back.cancel, 1u);
                EXPECT_GE(back.heartbeatSec, 0.0);
            }
        }
    }
}

// --- Journal format ----------------------------------------------------

TEST(BrokerJournal, LinesRoundTripWithConsecutiveSeqs)
{
    std::string text;
    text += brk::buildJournalLine(5, "{\"kind\": \"job\"}");
    text += brk::buildJournalLine(6, "{\"kind\": \"commit\"}");
    text += brk::buildJournalLine(7, "{\"kind\": \"done\"}");
    std::vector<brk::JournalEntry> entries;
    std::size_t dropped = 9;
    std::string err;
    ASSERT_TRUE(brk::parseJournal(text, entries, &dropped, &err))
        << err;
    ASSERT_EQ(3u, entries.size());
    EXPECT_EQ(0u, dropped);
    EXPECT_EQ(5u, entries[0].seq);
    EXPECT_EQ("{\"kind\": \"commit\"}", entries[1].body);
}

TEST(BrokerJournal, TornFinalLineIsDroppedAndCounted)
{
    std::string whole;
    whole += brk::buildJournalLine(1, "{\"kind\": \"job\"}");
    whole += brk::buildJournalLine(2, "{\"kind\": \"commit\"}");
    const std::size_t firstLen = whole.find('\n') + 1;
    // Every torn prefix of the FINAL line (the crash-mid-append
    // shape) must parse: the complete first line survives, the torn
    // tail is dropped and counted, never rejected. A cut that only
    // loses the trailing newline leaves a hash-valid line, so stop
    // one byte short of it.
    for (std::size_t cut = firstLen + 1; cut + 1 < whole.size();
         ++cut) {
        std::vector<brk::JournalEntry> entries;
        std::size_t dropped = 0;
        std::string err;
        ASSERT_TRUE(brk::parseJournal(whole.substr(0, cut), entries,
                                      &dropped, &err))
            << "cut=" << cut << ": " << err;
        EXPECT_EQ(1u, entries.size()) << "cut=" << cut;
        EXPECT_EQ(1u, dropped) << "cut=" << cut;
    }
}

TEST(BrokerJournal, MidFileDamageIsTamperingAndRejects)
{
    std::string text;
    text += brk::buildJournalLine(1, "{\"kind\": \"job\"}");
    text += brk::buildJournalLine(2, "{\"kind\": \"commit\"}");
    text += brk::buildJournalLine(3, "{\"kind\": \"done\"}");
    // Flip one byte of the FIRST line: with valid lines after it,
    // this cannot be a crash artifact.
    std::string evil = text;
    evil[text.find("job")] = 'J';
    std::vector<brk::JournalEntry> entries;
    std::string err;
    EXPECT_FALSE(brk::parseJournal(evil, entries, nullptr, &err));
    EXPECT_FALSE(err.empty());
    // A seq gap before the end is equally tampering (deleted line).
    std::string gapped;
    gapped += brk::buildJournalLine(1, "{\"kind\": \"job\"}");
    gapped += brk::buildJournalLine(3, "{\"kind\": \"done\"}");
    gapped += brk::buildJournalLine(4, "{\"kind\": \"done\"}");
    EXPECT_FALSE(brk::parseJournal(gapped, entries, nullptr, &err));
    // The pristine text still parses — the rejects above were about
    // the damage, not the corpus.
    EXPECT_TRUE(brk::parseJournal(text, entries, nullptr, &err))
        << err;
}

// --- The Broker state machine (in-process, no socket) ------------------

brk::BrokerConfig
quickConfig()
{
    brk::BrokerConfig cfg;
    cfg.heartbeatSec = 0.05;
    cfg.workerDeadSec = 10.0; // liveness off unless a test wants it
    cfg.leaseBaseSec = 10.0;
    cfg.stragglerFactor = 0.0; // stealing off unless a test wants it
    cfg.parkAfterSec = 0.0;    // parking off unless a test wants it
    return cfg;
}

TEST(Broker, SubmitPullCommitPollFetchHappyPath)
{
    brk::Broker b(quickConfig());
    const brk::Msg job = ask(b, submitMsg());
    ASSERT_EQ("job", job.type) << job.error;
    EXPECT_EQ(2u, job.total);
    EXPECT_EQ(0u, job.resumed);

    // Idle poll before any commit.
    brk::Msg poll;
    poll.type = "poll";
    poll.job = job.job;
    brk::Msg st = ask(b, poll);
    ASSERT_EQ("status", st.type);
    EXPECT_EQ(0u, st.done.size());
    EXPECT_EQ(0u, st.complete);

    std::string payloads[2];
    for (int i = 0; i < 2; ++i) {
        const brk::Msg assign = ask(b, pullMsg("w1"));
        ASSERT_EQ("assign", assign.type);
        EXPECT_EQ(2u, assign.nshards);
        ASSERT_GE(assign.args.size(), 2u);
        EXPECT_EQ("--shard", assign.args[assign.args.size() - 2]);
        const brk::Msg ack = computeAndCommit(b, assign, "w1");
        ASSERT_EQ("ok", ack.type);
        EXPECT_EQ(1u, ack.accepted);
        EXPECT_EQ(0u, ack.duplicate);
        brk::Msg get;
        get.type = "fetch";
        get.job = job.job;
        get.shard = assign.shard;
        const brk::Msg res = ask(b, get);
        ASSERT_EQ("result", res.type);
        payloads[assign.shard] = res.payload;
    }
    EXPECT_EQ("idle", ask(b, pullMsg("w1")).type);
    st = ask(b, poll);
    EXPECT_EQ(2u, st.done.size());
    EXPECT_EQ(1u, st.complete);
    EXPECT_NE(payloads[0], payloads[1]);
    const brk::Broker::Stats s = b.stats();
    EXPECT_EQ(1u, s.jobsSubmitted);
    EXPECT_EQ(1u, s.jobsCompleted);
    EXPECT_EQ(2u, s.assignments);
    EXPECT_EQ(2u, s.commitsAccepted);
    EXPECT_EQ(0u, s.redispatches);

    // Re-submitting the same fingerprint adopts the finished job.
    const brk::Msg again = ask(b, submitMsg());
    ASSERT_EQ("job", again.type);
    EXPECT_EQ(1u, again.resumed);
    EXPECT_EQ(job.job, again.job);
}

TEST(Broker, BadSubmitsAreRejected)
{
    brk::Broker b(quickConfig());
    brk::Msg m = submitMsg();
    m.fingerprint.clear();
    EXPECT_EQ("error", ask(b, m).type) << "missing fingerprint";
    m = submitMsg();
    m.nshards = 0;
    EXPECT_EQ("error", ask(b, m).type) << "zero shards";
    m = submitMsg();
    m.args.push_back("--shard");
    m.args.push_back("0/2");
    EXPECT_EQ("error", ask(b, m).type) << "broker-owned flag";
    m = submitMsg();
    m.args.push_back("--tier");
    m.args.push_back("scalar");
    EXPECT_EQ("error", ask(b, m).type) << "per-process pin";
    m = submitMsg();
    m.args = {"--arch", "nope"};
    EXPECT_EQ("error", ask(b, m).type) << "unknown workload";
    // An unparseable frame and an unknown type count as bad frames.
    brk::Msg back;
    ASSERT_TRUE(brk::parseMsg(b.handleMessage("garbage"), back));
    EXPECT_EQ("error", back.type);
    brk::Msg odd;
    odd.type = "frobnicate";
    EXPECT_EQ("error", ask(b, odd).type);
    EXPECT_EQ(2u, b.stats().badFrames);
}

TEST(Broker, DuplicateCommitIsCrossCheckedByteForByte)
{
    brk::Broker b(quickConfig());
    const brk::Msg job = ask(b, submitMsg("fp-dup", 1));
    ASSERT_EQ("job", job.type);
    const brk::Msg assign = ask(b, pullMsg("w1"));
    ASSERT_EQ("assign", assign.type);
    const srv::ShardResponse r = computeServer().handle(assign.args);
    ASSERT_EQ(0, r.status);

    brk::Msg c;
    c.type = "commit";
    c.worker = "w1";
    c.lease = assign.lease;
    c.job = assign.job;
    c.shard = assign.shard;
    c.payload = r.payload;
    ASSERT_EQ(1u, ask(b, c).accepted);

    // The losing twin of a steal: identical bytes, a free
    // end-to-end determinism check.
    c.worker = "w2";
    c.lease = 9999; // its lease is long gone
    brk::Msg ack = ask(b, c);
    EXPECT_EQ(1u, ack.duplicate);
    EXPECT_EQ(0u, ack.accepted);
    EXPECT_EQ(1u, b.stats().duplicateMatches);
    EXPECT_EQ(0u, b.stats().duplicateMismatches);

    // A diverging duplicate is the alarm bell.
    c.payload = "{\"not\": \"the same\"}";
    ack = ask(b, c);
    EXPECT_EQ(1u, ack.duplicate);
    EXPECT_EQ(1u, b.stats().duplicateMismatches);
}

TEST(Broker, InvalidSuccessPayloadIsRejectedAndRequeued)
{
    brk::Broker b(quickConfig());
    ASSERT_EQ("job", ask(b, submitMsg("fp-bad", 1)).type);
    const brk::Msg assign = ask(b, pullMsg("w1"));
    ASSERT_EQ("assign", assign.type);
    brk::Msg c;
    c.type = "commit";
    c.worker = "w1";
    c.lease = assign.lease;
    c.job = assign.job;
    c.shard = assign.shard;
    c.status = 0;
    c.payload = "{\"qramsim_partial\": 1, \"garbage\": true}";
    const brk::Msg ack = ask(b, c);
    EXPECT_EQ(0u, ack.accepted);
    EXPECT_EQ(0u, ack.duplicate);
    EXPECT_EQ(1u, b.stats().commitsRejected);
    // The shard went straight back to the queue.
    const brk::Msg retry = ask(b, pullMsg("w2"));
    ASSERT_EQ("assign", retry.type);
    EXPECT_EQ(assign.shard, retry.shard);
    EXPECT_EQ(1u, b.stats().redispatches);
    EXPECT_EQ(1u, b.stats().steals) << "new worker = steal";
}

TEST(Broker, RetryableFailuresRequeuePermanentOnesSettle)
{
    brk::BrokerConfig cfg = quickConfig();
    cfg.maxAttempts = 2;
    brk::Broker b(cfg);
    const brk::Msg job = ask(b, submitMsg("fp-fail", 1));
    ASSERT_EQ("job", job.type);

    // Retryable (ToolExit 3): requeued.
    brk::Msg assign = ask(b, pullMsg("w1"));
    ASSERT_EQ("assign", assign.type);
    brk::Msg c;
    c.type = "commit";
    c.worker = "w1";
    c.lease = assign.lease;
    c.job = assign.job;
    c.shard = assign.shard;
    c.status = 3;
    c.error = "transient I/O";
    ask(b, c);

    // Second attempt fails permanently (ToolExit 2): settle.
    assign = ask(b, pullMsg("w1"));
    ASSERT_EQ("assign", assign.type);
    c.lease = assign.lease;
    c.status = 2;
    c.error = "usage";
    ask(b, c);
    EXPECT_EQ("idle", ask(b, pullMsg("w1")).type);

    brk::Msg poll;
    poll.type = "poll";
    poll.job = job.job;
    const brk::Msg st = ask(b, poll);
    ASSERT_EQ("status", st.type);
    EXPECT_EQ(0u, st.complete);
    EXPECT_EQ(1u, st.jobFailed);
    ASSERT_EQ(1u, st.failed.size());
    EXPECT_EQ(1u, b.stats().shardsFailed);

    // Fetching an unfinished shard reports pending, not garbage.
    brk::Msg get;
    get.type = "fetch";
    get.job = job.job;
    get.shard = 0;
    EXPECT_EQ("pending", ask(b, get).type);
}

TEST(Broker, ExhaustedRetryableAttemptsSettleTheShard)
{
    brk::BrokerConfig cfg = quickConfig();
    cfg.maxAttempts = 2;
    brk::Broker b(cfg);
    ASSERT_EQ("job", ask(b, submitMsg("fp-exhaust", 1)).type);
    for (int attempt = 0; attempt < 2; ++attempt) {
        const brk::Msg assign = ask(b, pullMsg("w1"));
        ASSERT_EQ("assign", assign.type) << "attempt " << attempt;
        brk::Msg c;
        c.type = "commit";
        c.worker = "w1";
        c.lease = assign.lease;
        c.job = assign.job;
        c.shard = assign.shard;
        c.status = 3;
        ask(b, c);
    }
    EXPECT_EQ("idle", ask(b, pullMsg("w1")).type)
        << "attempts exhausted: the shard must settle, not loop";
    EXPECT_EQ(1u, b.stats().shardsFailed);
}

TEST(Broker, DeadWorkerLeaseReturnsToQueueForStealing)
{
    brk::BrokerConfig cfg = quickConfig();
    cfg.heartbeatSec = 0.03;
    cfg.workerDeadSec = 0.12;
    brk::Broker b(cfg);
    ASSERT_TRUE(b.start()); // housekeeping thread, no socket
    ASSERT_EQ("job", ask(b, submitMsg("fp-dead", 1)).type);
    const brk::Msg assign = ask(b, pullMsg("w1"));
    ASSERT_EQ("assign", assign.type);
    // w1 goes silent holding the lease. The broker must declare it
    // dead and hand the shard to w2.
    brk::Msg stolen;
    for (int i = 0; i < 100; ++i) {
        sleepMs(30);
        stolen = ask(b, pullMsg("w2"));
        if (stolen.type == "assign")
            break;
    }
    ASSERT_EQ("assign", stolen.type);
    EXPECT_EQ(assign.shard, stolen.shard);
    const brk::Broker::Stats s = b.stats();
    EXPECT_GE(s.deadWorkers, 1u);
    EXPECT_GE(s.steals, 1u);
    EXPECT_GE(s.redispatches, 1u);
    EXPECT_GT(s.stealLatencySecTotal, 0.0);
    // w2 finishes it.
    const brk::Msg ack = computeAndCommit(b, stolen, "w2");
    EXPECT_EQ(1u, ack.accepted);
    b.stop();
}

TEST(Broker, FrozenProgressHeartbeatsLoseTheLease)
{
    brk::BrokerConfig cfg = quickConfig();
    cfg.heartbeatSec = 0.03;
    cfg.workerDeadSec = 10.0; // alive the whole time
    cfg.leaseBaseSec = 0.15;
    brk::Broker b(cfg);
    ASSERT_TRUE(b.start());
    ASSERT_EQ("job", ask(b, submitMsg("fp-stall", 1)).type);
    const brk::Msg assign = ask(b, pullMsg("w1"));
    ASSERT_EQ("assign", assign.type);

    // Heartbeat diligently — with progress FROZEN. The lease must
    // expire on schedule despite the liveness signal.
    brk::Msg stolen;
    bool cancelled = false;
    for (int i = 0; i < 100; ++i) {
        brk::Msg beat;
        beat.type = "heartbeat";
        beat.worker = "w1";
        beat.lease = assign.lease;
        beat.progress = 1; // never advances
        if (ask(b, beat).cancel)
            cancelled = true;
        stolen = ask(b, pullMsg("w2"));
        if (stolen.type == "assign")
            break;
        sleepMs(30);
    }
    ASSERT_EQ("assign", stolen.type);
    EXPECT_EQ(assign.shard, stolen.shard);
    EXPECT_TRUE(cancelled)
        << "the stalled worker's next heartbeat learns of the "
           "revocation";
    EXPECT_GE(b.stats().leaseExpiries, 1u);
    EXPECT_EQ(0u, b.stats().deadWorkers)
        << "the worker heartbeat the whole time";
    b.stop();
}

TEST(Broker, AdvancingProgressKeepsRenewingTheLease)
{
    brk::BrokerConfig cfg = quickConfig();
    cfg.heartbeatSec = 0.03;
    cfg.leaseBaseSec = 0.15;
    brk::Broker b(cfg);
    ASSERT_TRUE(b.start());
    ASSERT_EQ("job", ask(b, submitMsg("fp-renew", 1)).type);
    const brk::Msg assign = ask(b, pullMsg("w1"));
    ASSERT_EQ("assign", assign.type);
    // 0.45 s of advancing heartbeats across a 0.15 s lease: renewal
    // must keep the lease alive the whole way.
    for (std::uint64_t p = 1; p <= 15; ++p) {
        brk::Msg beat;
        beat.type = "heartbeat";
        beat.worker = "w1";
        beat.lease = assign.lease;
        beat.progress = p;
        EXPECT_EQ(0u, ask(b, beat).cancel) << "beat " << p;
        EXPECT_EQ("idle", ask(b, pullMsg("w2")).type)
            << "a renewed lease must not be re-dispatched";
        sleepMs(30);
    }
    EXPECT_EQ(0u, b.stats().leaseExpiries);
    b.stop();
}

TEST(Broker, AbandonedJobParksAndClientReturnUnparks)
{
    brk::BrokerConfig cfg = quickConfig();
    cfg.parkAfterSec = 0.1;
    brk::Broker b(cfg);
    ASSERT_TRUE(b.start());
    const brk::Msg job = ask(b, submitMsg("fp-park", 1));
    ASSERT_EQ("job", job.type);
    // The client vanishes; the job must park and stop dispatching.
    bool parked = false;
    for (int i = 0; i < 100 && !parked; ++i) {
        sleepMs(30);
        parked = b.stats().jobsParked > 0;
    }
    ASSERT_TRUE(parked);
    EXPECT_EQ("idle", ask(b, pullMsg("w1")).type)
        << "parked jobs do not dispatch";
    // The client reconnects (same fingerprint): dispatch resumes.
    const brk::Msg again = ask(b, submitMsg("fp-park", 1));
    ASSERT_EQ("job", again.type);
    EXPECT_EQ(1u, again.resumed);
    EXPECT_EQ("assign", ask(b, pullMsg("w1")).type);
    b.stop();
}

TEST(Broker, QueueEmptyStealDuplicatesTheOldestStraggler)
{
    brk::BrokerConfig cfg = quickConfig();
    cfg.stragglerFactor = 1.5;
    cfg.stragglerMinDone = 1;
    brk::Broker b(cfg);
    ASSERT_EQ("job", ask(b, submitMsg("fp-spec", 2)).type);

    // w1 takes shard A and commits fast — seeding the duration
    // history — then w2 takes shard B and goes quiet.
    const brk::Msg a = ask(b, pullMsg("w1"));
    ASSERT_EQ("assign", a.type);
    ASSERT_EQ(1u, computeAndCommit(b, a, "w1").accepted);
    const brk::Msg stuck = ask(b, pullMsg("w2"));
    ASSERT_EQ("assign", stuck.type);

    // Once w2's lease age crosses 1.5x the median, an idle w1 pull
    // speculatively duplicates it instead of sitting idle.
    brk::Msg spec;
    for (int i = 0; i < 400; ++i) {
        spec = ask(b, pullMsg("w1"));
        if (spec.type == "assign")
            break;
        sleepMs(20);
    }
    ASSERT_EQ("assign", spec.type);
    EXPECT_EQ(stuck.shard, spec.shard);
    EXPECT_GE(b.stats().speculativeAssignments, 1u);
    EXPECT_GE(b.stats().steals, 1u);

    // Both commit; first valid commit wins, the twin cross-checks.
    ASSERT_EQ(1u, computeAndCommit(b, spec, "w1").accepted);
    const brk::Msg late = computeAndCommit(b, stuck, "w2");
    EXPECT_EQ(1u, late.duplicate);
    EXPECT_EQ(1u, b.stats().duplicateMatches);
    EXPECT_EQ(0u, b.stats().duplicateMismatches)
        << "a steal twin must be byte-identical";
}

// --- Journal persistence across restarts -------------------------------

TEST(Broker, JournalReplayResumesHalfDoneJobs)
{
    const std::string dir = tempDir("brk_journal");
    std::string donePayload;
    std::uint64_t doneShard = 0;
    {
        brk::BrokerConfig cfg = quickConfig();
        cfg.stateDir = dir;
        brk::Broker a(cfg);
        ASSERT_TRUE(a.start());
        ASSERT_EQ("job", ask(a, submitMsg("fp-replay", 2)).type);
        const brk::Msg assign = ask(a, pullMsg("w1"));
        ASSERT_EQ("assign", assign.type);
        const srv::ShardResponse r =
            computeServer().handle(assign.args);
        ASSERT_EQ(0, r.status);
        donePayload = r.payload;
        doneShard = assign.shard;
        brk::Msg c;
        c.type = "commit";
        c.worker = "w1";
        c.lease = assign.lease;
        c.job = assign.job;
        c.shard = assign.shard;
        c.payload = r.payload;
        ASSERT_EQ(1u, ask(a, c).accepted);
        a.stop(); // broker dies with one of two shards committed
    }
    {
        // Present journal without resume: refuse loudly.
        brk::BrokerConfig cfg = quickConfig();
        cfg.stateDir = dir;
        brk::Broker no(cfg);
        std::string err;
        EXPECT_FALSE(no.start(&err));
        EXPECT_NE(std::string::npos, err.find("resume")) << err;
    }
    brk::BrokerConfig cfg = quickConfig();
    cfg.stateDir = dir;
    cfg.resume = true;
    brk::Broker b(cfg);
    std::string err;
    ASSERT_TRUE(b.start(&err)) << err;
    EXPECT_EQ(1u, b.stats().journalReplayedCommits);

    // The client reconnects with the same fingerprint and adopts
    // the half-done job; the replayed commit serves byte-identically.
    const brk::Msg job = ask(b, submitMsg("fp-replay", 2));
    ASSERT_EQ("job", job.type);
    EXPECT_EQ(1u, job.resumed);
    brk::Msg get;
    get.type = "fetch";
    get.job = job.job;
    get.shard = doneShard;
    const brk::Msg res = ask(b, get);
    ASSERT_EQ("result", res.type);
    EXPECT_EQ(donePayload, res.payload);

    // Exactly the missing shard is dispatched, and the job finishes.
    const brk::Msg assign = ask(b, pullMsg("w2"));
    ASSERT_EQ("assign", assign.type);
    EXPECT_NE(doneShard, assign.shard);
    ASSERT_EQ(1u, computeAndCommit(b, assign, "w2").accepted);
    EXPECT_EQ("idle", ask(b, pullMsg("w2")).type);
    brk::Msg poll;
    poll.type = "poll";
    poll.job = job.job;
    EXPECT_EQ(1u, ask(b, poll).complete);
    b.stop();
}

TEST(Broker, TornJournalTailIsDroppedTamperIsRefused)
{
    const std::string dir = tempDir("brk_torn");
    {
        brk::BrokerConfig cfg = quickConfig();
        cfg.stateDir = dir;
        brk::Broker a(cfg);
        ASSERT_TRUE(a.start());
        ASSERT_EQ("job", ask(a, submitMsg("fp-torn", 2)).type);
        const brk::Msg assign = ask(a, pullMsg("w1"));
        ASSERT_EQ("assign", assign.type);
        ASSERT_EQ(1u, computeAndCommit(a, assign, "w1").accepted);
        a.stop();
    }
    const std::string path = brk::Broker::journalPath(dir);
    const std::string whole = readFileStr(path);
    ASSERT_FALSE(whole.empty());

    // Torn tail (SIGKILL mid-append): drop, count, resume — the
    // half-written commit is simply recomputed.
    ASSERT_TRUE(
        writeFileStr(path, whole.substr(0, whole.size() - 7)));
    {
        brk::BrokerConfig cfg = quickConfig();
        cfg.stateDir = dir;
        cfg.resume = true;
        brk::Broker b(cfg);
        std::string err;
        ASSERT_TRUE(b.start(&err)) << err;
        EXPECT_GE(b.stats().journalDroppedEntries, 1u);
        EXPECT_EQ(0u, b.stats().journalReplayedCommits)
            << "the torn line WAS the commit";
        b.stop();
    }

    // Mid-file damage: refuse to start at all. Flip a byte of the
    // FIRST line so valid lines follow the damage.
    std::string evil = whole;
    evil[whole.find('\n') / 2] ^= 0x20;
    ASSERT_TRUE(writeFileStr(path, evil));
    {
        brk::BrokerConfig cfg = quickConfig();
        cfg.stateDir = dir;
        cfg.resume = true;
        brk::Broker b(cfg);
        std::string err;
        EXPECT_FALSE(b.start(&err))
            << "a tampered journal must not replay";
    }
}

TEST(Broker, JournalCompactionPreservesStateAndStaysReplayable)
{
    const std::string dir = tempDir("brk_compact");
    brk::BrokerConfig cfg = quickConfig();
    cfg.stateDir = dir;
    cfg.rotateBytes = 1; // force a compaction after every append
    brk::Broker a(cfg);
    ASSERT_TRUE(a.start());
    ASSERT_EQ("job", ask(a, submitMsg("fp-compact", 2)).type);
    for (int i = 0; i < 2; ++i) {
        const brk::Msg assign = ask(a, pullMsg("w1"));
        ASSERT_EQ("assign", assign.type);
        ASSERT_EQ(1u, computeAndCommit(a, assign, "w1").accepted);
    }
    a.stop();
    // The rotated journal must replay to the full finished job.
    brk::BrokerConfig rcfg = quickConfig();
    rcfg.stateDir = dir;
    rcfg.resume = true;
    brk::Broker b(rcfg);
    std::string err;
    ASSERT_TRUE(b.start(&err)) << err;
    EXPECT_EQ(2u, b.stats().journalReplayedCommits);
    const brk::Msg job = ask(b, submitMsg("fp-compact", 2));
    ASSERT_EQ("job", job.type);
    brk::Msg poll;
    poll.type = "poll";
    poll.job = job.job;
    EXPECT_EQ(1u, ask(b, poll).complete);
    b.stop();
}

// --- The kill/steal/resume matrix end to end ---------------------------

#if defined(QRAMSIM_SHARD_BIN) && defined(QRAMSIM_DRIVE_BIN) && \
    defined(QRAMSIM_SERVER_BIN) && defined(QRAMSIM_BROKER_BIN)

const char kWorkload[] =
    " --arch bb --m 4 --noise gate-depol --eps 2e-3 --shots 48 "
    "--seed 2023 --factors 0.5,1,2";

/** Launch a background process via the shell, pid on file. */
void
startBg(const std::string &cmd, const std::string &pidFile,
        const std::string &log)
{
    ASSERT_EQ(0, shCode(cmd + " > " + log + " 2>&1 & echo $! > " +
                        pidFile));
}

void
killPid(const std::string &pidFile, const char *sig = "-TERM")
{
    shCode("kill " + std::string(sig) + " $(cat " + pidFile +
           ") 2>/dev/null; true");
}

/** Block until the process named by @p pidFile exits. */
int
waitPidFile(const std::string &dir, const std::string &pidFile)
{
    return shCode("while kill -0 $(cat " + dir + "/" + pidFile +
                  ") 2>/dev/null; do sleep 0.1; done");
}

bool
waitSocket(const std::string &sock)
{
    for (int i = 0; i < 250; ++i) {
        const int fd = srv::connectUnix(sock);
        if (fd >= 0) {
            ::close(fd);
            return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
}

std::string
waitStats(const std::string &dir)
{
    for (int i = 0; i < 250; ++i) {
        const std::string stats = readFileStr(dir + "/stats.json");
        if (!stats.empty())
            return stats;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return "";
}

TEST(BrokerCli, DriveBrokerIsByteIdenticalToForkExec)
{
    const std::string dir = tempDir("brkcli_basic");
    const std::string drive =
        std::string(QRAMSIM_DRIVE_BIN) +
        " --worker-bin " QRAMSIM_SHARD_BIN " --shards 6";
    ASSERT_EQ(0, shCode(drive + " --job " + dir + "/ref" + kWorkload +
                        " > /dev/null 2>&1"));
    const std::string ref = readFileStr(dir + "/ref/result.json");
    ASSERT_FALSE(ref.empty());

    const std::string sock = dir + "/broker.sock";
    startBg(std::string(QRAMSIM_BROKER_BIN) + " --socket " + sock +
                " --state " + dir + "/state --heartbeat 0.2" +
                " --stats-out " + dir + "/stats.json",
            dir + "/broker.pid", dir + "/broker.log");
    ASSERT_TRUE(waitSocket(sock));
    startBg(std::string(QRAMSIM_SERVER_BIN) + " --broker " + sock +
                " --name w1",
            dir + "/w1.pid", dir + "/w1.log");
    startBg(std::string(QRAMSIM_SERVER_BIN) + " --broker " + sock +
                " --name w2",
            dir + "/w2.pid", dir + "/w2.log");

    ASSERT_EQ(0, shCode(drive + " --job " + dir + "/brokered" +
                        " --broker " + sock + kWorkload +
                        " > /dev/null 2>&1"));
    EXPECT_EQ(ref, readFileStr(dir + "/brokered/result.json"));
    const std::string report =
        readFileStr(dir + "/brokered/report.json");
    EXPECT_NE(std::string::npos,
              report.find("\"broker_shards\": 6"));
    EXPECT_NE(std::string::npos,
              report.find("\"broker_transport_failures\": 0"));

    killPid(dir + "/w1.pid");
    killPid(dir + "/w2.pid");
    killPid(dir + "/broker.pid");
    const std::string stats = waitStats(dir);
    EXPECT_NE(std::string::npos,
              stats.find("\"commits_accepted\": 6"))
        << stats;
    EXPECT_NE(std::string::npos,
              stats.find("\"duplicate_mismatches\": 0"));
}

TEST(BrokerCli, MissingBrokerFallsBackWithoutBurningRetries)
{
    const std::string dir = tempDir("brkcli_fallback");
    const std::string drive =
        std::string(QRAMSIM_DRIVE_BIN) +
        " --worker-bin " QRAMSIM_SHARD_BIN " --shards 4";
    ASSERT_EQ(0, shCode(drive + " --job " + dir + "/ref" + kWorkload +
                        " > /dev/null 2>&1"));
    ASSERT_EQ(0, shCode(drive + " --job " + dir + "/fallback" +
                        " --broker " + dir + "/never-existed.sock" +
                        kWorkload + " > /dev/null 2>&1"));
    EXPECT_EQ(readFileStr(dir + "/ref/result.json"),
              readFileStr(dir + "/fallback/result.json"));
    const std::string report =
        readFileStr(dir + "/fallback/report.json");
    EXPECT_EQ(std::string::npos,
              report.find("\"broker_transport_failures\": 0"))
        << "the fallback must be visible in the report: " << report;
    EXPECT_NE(std::string::npos, report.find("\"retries\": 0"))
        << "a dead broker must not burn worker retries: " << report;
}

TEST(BrokerCli, KilledWorkerIsStolenByteIdentically)
{
    const std::string dir = tempDir("brkcli_steal");
    const std::string drive =
        std::string(QRAMSIM_DRIVE_BIN) +
        " --worker-bin " QRAMSIM_SHARD_BIN " --shards 4";
    ASSERT_EQ(0, shCode(drive + " --job " + dir + "/ref" + kWorkload +
                        " > /dev/null 2>&1"));

    const std::string sock = dir + "/broker.sock";
    startBg(std::string(QRAMSIM_BROKER_BIN) + " --socket " + sock +
                " --state " + dir + "/state --heartbeat 0.2" +
                " --stats-out " + dir + "/stats.json",
            dir + "/broker.pid", dir + "/broker.log");
    ASSERT_TRUE(waitSocket(sock));
    // ONLY the doomed worker at first: it must win shard 0 (global
    // shot 0), SIGKILL itself holding the lease, and leave the
    // broker to declare it dead and steal the shard back.
    startBg("QRAMSIM_FAULT=kill-on-pull:0 QRAMSIM_FAULT_MARK=" + dir +
                "/mark " QRAMSIM_SERVER_BIN " --broker " + sock +
                " --name doomed",
            dir + "/w1.pid", dir + "/w1.log");
    startBg(drive + " --job " + dir + "/stolen --broker " + sock +
                kWorkload,
            dir + "/drive.pid", dir + "/drive.log");
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    startBg(std::string(QRAMSIM_SERVER_BIN) + " --broker " + sock +
                " --name rescuer",
            dir + "/w2.pid", dir + "/w2.log");
    ASSERT_EQ(0, waitPidFile(dir, "drive.pid"));
    EXPECT_EQ(readFileStr(dir + "/ref/result.json"),
              readFileStr(dir + "/stolen/result.json"));

    killPid(dir + "/w2.pid");
    killPid(dir + "/broker.pid");
    const std::string stats = waitStats(dir);
    EXPECT_EQ(std::string::npos, stats.find("\"steals\": 0"))
        << "the kill must surface as a steal: " << stats;
    EXPECT_EQ(std::string::npos, stats.find("\"dead_workers\": 0"))
        << stats;
    EXPECT_NE(std::string::npos,
              stats.find("\"duplicate_mismatches\": 0"))
        << stats;
}

TEST(BrokerCli, SigkilledBrokerResumesFromJournalByteIdentically)
{
    const std::string dir = tempDir("brkcli_resume");
    const std::string drive =
        std::string(QRAMSIM_DRIVE_BIN) +
        " --worker-bin " QRAMSIM_SHARD_BIN " --shards 6";
    ASSERT_EQ(0, shCode(drive + " --job " + dir + "/ref" + kWorkload +
                        " > /dev/null 2>&1"));

    const std::string sock = dir + "/broker.sock";
    const std::string bcmd = std::string(QRAMSIM_BROKER_BIN) +
                             " --socket " + sock + " --state " + dir +
                             "/state --heartbeat 0.2";
    startBg(bcmd, dir + "/broker.pid", dir + "/broker.log");
    ASSERT_TRUE(waitSocket(sock));
    startBg(std::string(QRAMSIM_SERVER_BIN) + " --broker " + sock +
                " --name w1",
            dir + "/w1.pid", dir + "/w1.log");
    // First run seeds the journal (some or all shards commit), then
    // the broker is SIGKILLed — the torn-crash shape.
    startBg(drive + " --job " + dir + "/resumed --broker " + sock +
                " --broker-stall 30" + kWorkload,
            dir + "/drive.pid", dir + "/drive.log");
    std::this_thread::sleep_for(std::chrono::milliseconds(700));
    killPid(dir + "/broker.pid", "-KILL");
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    ASSERT_FALSE(
        readFileStr(brk::Broker::journalPath(dir + "/state"))
            .empty())
        << "the journal must survive the SIGKILL";
    // Restart with --resume: replay, re-adopt the live worker, and
    // finish every in-flight job.
    startBg(bcmd + " --resume --stats-out " + dir + "/stats.json",
            dir + "/broker2.pid", dir + "/broker2.log");
    ASSERT_TRUE(waitSocket(sock));
    ASSERT_EQ(0, waitPidFile(dir, "drive.pid"));
    // Whether the drive streamed everything from the broker or fell
    // back for the tail, the merged result must not change.
    EXPECT_EQ(readFileStr(dir + "/ref/result.json"),
              readFileStr(dir + "/resumed/result.json"));

    killPid(dir + "/w1.pid");
    killPid(dir + "/broker2.pid");
    EXPECT_NE(std::string::npos,
              waitStats(dir).find("\"duplicate_mismatches\": 0"));
}

TEST(BrokerCli, JournalTruncateFaultTearsKillsAndRecovers)
{
    const std::string dir = tempDir("brkcli_torn");
    const std::string drive =
        std::string(QRAMSIM_DRIVE_BIN) +
        " --worker-bin " QRAMSIM_SHARD_BIN " --shards 4";
    ASSERT_EQ(0, shCode(drive + " --job " + dir + "/ref" + kWorkload +
                        " > /dev/null 2>&1"));

    const std::string sock = dir + "/broker.sock";
    // journal-truncate:0 — the broker writes HALF of the journal
    // line committing the shard that covers global shot 0, fsyncs,
    // and SIGKILLs itself. The deterministic power-loss drill.
    startBg("QRAMSIM_FAULT=journal-truncate:0 QRAMSIM_FAULT_MARK=" +
                dir + "/mark " QRAMSIM_BROKER_BIN " --socket " +
                sock + " --state " + dir + "/state --heartbeat 0.2",
            dir + "/broker.pid", dir + "/broker.log");
    ASSERT_TRUE(waitSocket(sock));
    startBg(std::string(QRAMSIM_SERVER_BIN) + " --broker " + sock +
                " --name w1",
            dir + "/w1.pid", dir + "/w1.log");
    startBg(drive + " --job " + dir + "/torn --broker " + sock +
                " --broker-stall 30" + kWorkload,
            dir + "/drive.pid", dir + "/drive.log");
    // The fault fires on the doomed commit and kills the broker.
    ASSERT_EQ(0, waitPidFile(dir, "broker.pid"));
    startBg(std::string(QRAMSIM_BROKER_BIN) + " --socket " + sock +
                " --state " + dir + "/state --heartbeat 0.2 " +
                "--resume --stats-out " + dir + "/stats.json",
            dir + "/broker2.pid", dir + "/broker2.log");
    ASSERT_TRUE(waitSocket(sock));
    ASSERT_EQ(0, waitPidFile(dir, "drive.pid"));
    EXPECT_EQ(readFileStr(dir + "/ref/result.json"),
              readFileStr(dir + "/torn/result.json"));
    killPid(dir + "/w1.pid");
    killPid(dir + "/broker2.pid");
    const std::string stats = waitStats(dir);
    // The torn line was dropped on replay (its shard recomputed);
    // nothing may have diverged.
    EXPECT_EQ(std::string::npos,
              stats.find("\"journal_dropped_entries\": 0"))
        << stats;
    EXPECT_NE(std::string::npos,
              stats.find("\"duplicate_mismatches\": 0"))
        << stats;
}

#endif // tool binaries available

} // namespace
} // namespace qramsim
