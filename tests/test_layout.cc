/**
 * @file
 * Tests for the 2D layout subsystem: grid/coupling graphs, H-tree
 * embedding validity, routing cost models, SABRE-lite transpilation,
 * and the compact NISQ QRAM that rides on it.
 */

#include <gtest/gtest.h>

#include "layout/devices.hh"
#include "layout/htree.hh"
#include "layout/routers.hh"
#include "layout/sabre_lite.hh"
#include "qram/compact.hh"
#include "qram/virtual_qram.hh"
#include "sim/feynman.hh"

namespace qramsim {
namespace {

TEST(CouplingGraph, PerthTopology)
{
    Device d = makeIbmPerth();
    EXPECT_EQ(d.coupling.size(), 7u);
    EXPECT_TRUE(d.coupling.adjacent(1, 3));
    EXPECT_FALSE(d.coupling.adjacent(0, 6));
    EXPECT_EQ(d.coupling.distance(0, 6), 4u); // 0-1-3-5-6
}

TEST(CouplingGraph, GuadalupeTopology)
{
    Device d = makeIbmGuadalupe();
    EXPECT_EQ(d.coupling.size(), 16u);
    EXPECT_TRUE(d.coupling.adjacent(12, 15));
    EXPECT_EQ(d.coupling.distance(0, 15), 6u); // 0-1-4-7-10-12-15
}

TEST(CouplingGraph, ShortestPathEndsMatch)
{
    Device d = makeIbmGuadalupe();
    auto p = d.coupling.shortestPath(0, 14);
    EXPECT_EQ(p.front(), 0u);
    EXPECT_EQ(p.back(), 14u);
    EXPECT_EQ(p.size(), d.coupling.distance(0, 14) + 1);
    for (std::size_t i = 0; i + 1 < p.size(); ++i)
        EXPECT_TRUE(d.coupling.adjacent(p[i], p[i + 1]));
}

TEST(CouplingGraph, GridDeviceDistancesAreManhattan)
{
    Device d = makeGridDevice(5, 4, {1e-4, 1e-3});
    EXPECT_EQ(d.coupling.size(), 20u);
    // (0,0) -> (4,3): 4 + 3 hops.
    EXPECT_EQ(d.coupling.distance(0, 19), 7u);
}

class HTreeParam : public ::testing::TestWithParam<unsigned>
{};

TEST_P(HTreeParam, EmbeddingIsTopologicalMinor)
{
    HTreeEmbedding e = HTreeEmbedding::build(GetParam());
    EXPECT_TRUE(e.validate()) << "m=" << GetParam() << "\n"
                              << (GetParam() <= 6 ? e.toAscii() : "");
}

TEST_P(HTreeParam, GridSideMatchesRecursion)
{
    unsigned m = GetParam();
    HTreeEmbedding e = HTreeEmbedding::build(m);
    if (m >= 2 && m % 2 == 0) {
        EXPECT_EQ(e.gridWidth(), (1 << (m / 2 + 1)) - 1);
        EXPECT_EQ(e.gridHeight(), e.gridWidth());
    }
    // Grid must hold all sites comfortably.
    EXPECT_GE(std::size_t(e.gridWidth()) * e.gridHeight(),
              TreeIndex::nodeCount(m) + TreeIndex::leafCount(m));
}

INSTANTIATE_TEST_SUITE_P(Widths, HTreeParam,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u, 9u, 10u));

TEST(HTree, BaseCaseMatchesFig6a)
{
    HTreeEmbedding e = HTreeEmbedding::build(2);
    // Root at the center, children on the middle row, leaves in the
    // corners (Fig. 6a).
    EXPECT_EQ(e.routerCell(0, 0), (Coord{1, 1}));
    EXPECT_EQ(e.routerCell(1, 0), (Coord{0, 1}));
    EXPECT_EQ(e.routerCell(1, 1), (Coord{2, 1}));
    EXPECT_EQ(e.leafCell(0), (Coord{0, 0}));
    EXPECT_EQ(e.leafCell(3), (Coord{2, 2}));
}

TEST(HTree, UnusedFractionApproachesQuarter)
{
    // Paper Sec. 7.2: unused qubits occupy ~25% of an even embedding.
    HTreeEmbedding e = HTreeEmbedding::build(8);
    EXPECT_GT(e.unusedFraction(), 0.15);
    EXPECT_LT(e.unusedFraction(), 0.45);
}

TEST(HTree, RootEdgeLengthGrowsExponentially)
{
    std::size_t prev = 0;
    for (unsigned m = 2; m <= 10; m += 2) {
        HTreeEmbedding e = HTreeEmbedding::build(m);
        std::size_t len = e.maxEdgeLength(0);
        EXPECT_GT(len, prev);
        prev = len;
    }
    // Root arm of T_10: about a quarter of a 63-wide grid.
    EXPECT_GE(prev, 8u);
}

TEST(Routing, SwapCostExplodesTeleportStaysFlat)
{
    std::uint64_t lastSwap = 0, lastTp = 0;
    for (unsigned m = 1; m <= 9; ++m) {
        HTreeEmbedding e = HTreeEmbedding::build(m);
        RoutingCost sw = swapRoutingCost(e);
        RoutingCost tp = teleportRoutingCost(e);
        EXPECT_GE(sw.extraDepth, lastSwap);
        lastSwap = sw.extraDepth;
        lastTp = tp.extraDepth;
        // Teleportation never exceeds linear-in-m depth.
        EXPECT_LE(tp.extraDepth, teleportHopDepth * 6ull * m);
    }
    // Exponential vs linear separation at m = 9 (Fig. 8's gap).
    EXPECT_GT(lastSwap, 4 * lastTp);
}

TEST(Routing, TeleportUsesRoutingQubits)
{
    HTreeEmbedding e = HTreeEmbedding::build(6);
    RoutingCost tp = teleportRoutingCost(e);
    EXPECT_GT(tp.routingQubits, 0u);
}

// --- Compact QRAM correctness (same contract as the big variants) ---

struct CompactParam
{
    unsigned m, k;
};

class CompactCorrectness : public ::testing::TestWithParam<CompactParam>
{};

TEST_P(CompactCorrectness, QueriesAllAddresses)
{
    const auto [m, k] = GetParam();
    CompactQram arch(m, k);
    Rng rng(70 + m * 8 + k);
    for (int trial = 0; trial < 4; ++trial) {
        Memory mem = Memory::random(m + k, rng);
        QueryCircuit qc = arch.build(mem);
        FeynmanExecutor exec(qc.circuit);
        for (std::uint64_t i = 0; i < mem.size(); ++i) {
            PathState in(qc.circuit.numQubits());
            for (unsigned b = 0; b < m + k; ++b)
                in.bits.set(qc.addressQubits[b], (i >> b) & 1);
            PathState out = exec.runIdeal(in);
            EXPECT_EQ(out.bits.get(qc.busQubit), mem.bit(i))
                << "address " << i;
            BitVec expected(qc.circuit.numQubits());
            for (unsigned b = 0; b < m + k; ++b)
                expected.set(qc.addressQubits[b], (i >> b) & 1);
            expected.set(qc.busQubit, mem.bit(i));
            EXPECT_EQ(out.bits, expected) << "address " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CompactCorrectness,
    ::testing::Values(CompactParam{1, 0}, CompactParam{1, 1},
                      CompactParam{2, 0}, CompactParam{2, 1},
                      CompactParam{3, 0}, CompactParam{3, 2},
                      CompactParam{4, 1}),
    [](const ::testing::TestParamInfo<CompactParam> &info) {
        return "m" + std::to_string(info.param.m) + "k" +
               std::to_string(info.param.k);
    });

TEST(CompactQram, FitsTheAppendixDevices)
{
    EXPECT_LE(CompactQram::qubitCount(1, 0), 7u);  // ibm_perth
    EXPECT_LE(CompactQram::qubitCount(1, 1), 7u);
    EXPECT_LE(CompactQram::qubitCount(2, 0), 16u); // ibmq_guadalupe
    EXPECT_LE(CompactQram::qubitCount(2, 1), 16u);
}

// --- SABRE-lite: routed circuits stay semantically correct ----------

void
expectRoutedCorrect(const QueryArchitecture &arch, const Memory &mem,
                    const CouplingGraph &device)
{
    QueryCircuit qc = arch.build(mem);
    RoutedCircuit routed = routeOntoDevice(qc, device);
    FeynmanExecutor exec(routed.circuit);
    for (std::uint64_t i = 0; i < mem.size(); ++i) {
        PathState in(routed.circuit.numQubits());
        for (unsigned b = 0; b < arch.addressWidth(); ++b)
            in.bits.set(routed.addressQubits[b], (i >> b) & 1);
        PathState out = exec.runIdeal(in);
        EXPECT_EQ(out.bits.get(routed.busQubit), mem.bit(i))
            << "address " << i;
        BitVec expected(routed.circuit.numQubits());
        for (unsigned b = 0; b < arch.addressWidth(); ++b)
            expected.set(routed.addressQubits[b], (i >> b) & 1);
        expected.set(routed.busQubit, mem.bit(i));
        EXPECT_EQ(out.bits, expected) << "address " << i;
    }
}

TEST(SabreLite, PerthM1Configs)
{
    Device perth = makeIbmPerth();
    Rng rng(11);
    expectRoutedCorrect(CompactQram(1, 0), Memory::random(1, rng),
                        perth.coupling);
    expectRoutedCorrect(CompactQram(1, 1), Memory::random(2, rng),
                        perth.coupling);
}

TEST(SabreLite, GuadalupeM2Configs)
{
    Device g = makeIbmGuadalupe();
    Rng rng(13);
    expectRoutedCorrect(CompactQram(2, 0), Memory::random(2, rng),
                        g.coupling);
    expectRoutedCorrect(CompactQram(2, 1), Memory::random(3, rng),
                        g.coupling);
}

TEST(SabreLite, InsertsSwapsOnSparseDevice)
{
    Device g = makeIbmGuadalupe();
    Rng rng(17);
    Memory mem = Memory::random(2, rng);
    QueryCircuit qc = CompactQram(2, 0).build(mem);
    RoutedCircuit routed = routeOntoDevice(qc, g.coupling);
    EXPECT_GT(routed.swapCount, 0u);
}

TEST(SabreLite, AdjacentGatesNeedNoSwapsOnDenseGrid)
{
    // A big grid with identity layout: a 2-qubit circuit on neighbors.
    Device grid = makeGridDevice(4, 4, {0, 0});
    QueryCircuit qc;
    qc.addressQubits = qc.circuit.allocRegister(1, "addr");
    qc.busQubit = qc.circuit.allocQubit("bus");
    qc.circuit.cx(qc.addressQubits[0], qc.busQubit);
    RoutedCircuit routed = routeOntoDevice(qc, grid.coupling);
    EXPECT_EQ(routed.swapCount, 0u);
}

TEST(SabreLite, RoutesDualRailQramOnGridDevice)
{
    // Full dual-rail virtual QRAM with k = 2: its page-select MCX has
    // 3 controls + target = 4 operands, stressing the connected-
    // cluster routing path; 8x8 grid comfortably fits the 52 qubits.
    Device grid = makeGridDevice(8, 8, {1e-4, 1e-3});
    Rng rng(23);
    Memory mem = Memory::random(4, rng);
    expectRoutedCorrect(VirtualQram(2, 2), mem, grid.coupling);
}

TEST(SabreLite, SwapCountGrowsWithSparsity)
{
    // The same compact circuit needs more SWAPs on the sparse
    // heavy-hex map than on a dense grid of equal size.
    Rng rng(29);
    Memory mem = Memory::random(2, rng);
    QueryCircuit qc = CompactQram(2, 0).build(mem);
    Device hex = makeIbmGuadalupe();
    Device grid = makeGridDevice(4, 4, {1e-4, 1e-3});
    RoutedCircuit onHex = routeOntoDevice(qc, hex.coupling);
    RoutedCircuit onGrid = routeOntoDevice(qc, grid.coupling);
    EXPECT_GT(onHex.swapCount, onGrid.swapCount);
}

TEST(SabreLite, RejectsOversizedCircuits)
{
    Device perth = makeIbmPerth();
    Rng rng(19);
    Memory mem = Memory::random(2, rng);
    QueryCircuit qc = CompactQram(2, 0).build(mem); // 13 qubits > 7
    EXPECT_DEATH(
        { routeOntoDevice(qc, perth.coupling); }, "circuit needs");
}

} // namespace
} // namespace qramsim
