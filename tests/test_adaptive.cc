/**
 * @file
 * Adaptive estimation tests (EstimateMode::Adaptive): the shared
 * stats helpers; the closed-form empty/Z-only class probabilities
 * against empirical classifier frequencies for every bundled noise
 * model; the adaptive-vs-replay CI tolerance contract across all six
 * architectures under X/Y/Z/depolarizing noise; exact analytic
 * folding on all-empty workloads; heterogeneous shard-merge
 * byte-identity in the keep-all mode; thread-count determinism; and
 * merge-order invariance plus exact JSON round-trips with the
 * sequential-stopping rule engaged.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "qram/baselines.hh"
#include "qram/bucket_brigade.hh"
#include "qram/compact.hh"
#include "qram/fanout.hh"
#include "qram/select_swap.hh"
#include "qram/virtual_qram.hh"
#include "sim/fidelity.hh"
#include "sim/noise.hh"
#include "sim/sharding.hh"

namespace qramsim {
namespace {

// --- Shared stats helpers ----------------------------------------------

TEST(Stats, MomentHelpersMatchHandRolledExpressions)
{
    const double xs[] = {0.25, 0.5, 0.125, 0.875, 0.75};
    double sum = 0.0, sumSq = 0.0;
    for (double x : xs) {
        sum += x;
        sumSq += x * x;
    }
    const std::size_t n = 5;
    // The exact expressions PartialEstimate::finalize has always
    // used, evaluated in the same order.
    const double mean = sum / static_cast<double>(n);
    const double var =
        std::max(0.0, sumSq / static_cast<double>(n) - mean * mean);
    EXPECT_EQ(stats::meanFromSums(sum, n), mean);
    EXPECT_EQ(stats::varianceFromSums(sum, sumSq, n), var);
    EXPECT_EQ(stats::stderrFromSums(sum, sumSq, n),
              std::sqrt(var / (static_cast<double>(n) - 1.0)));

    // Degenerate cases: n <= 1 has no stderr; a constant sample's
    // negative rounding residue clamps to zero.
    EXPECT_EQ(stats::stderrFromSums(0.3, 0.09, 1), 0.0);
    EXPECT_GE(stats::varianceFromSums(0.3, 0.03, 3), 0.0);
}

TEST(Stats, NormalQuantileMatchesKnownValues)
{
    EXPECT_NEAR(stats::normalQuantile(0.975), 1.959964, 1e-5);
    EXPECT_NEAR(stats::normalQuantile(0.995), 2.575829, 1e-5);
    EXPECT_NEAR(stats::normalQuantile(0.5), 0.0, 1e-9);
    EXPECT_NEAR(stats::normalQuantile(0.001), -3.090232, 1e-5);
    // Symmetry and the confidence-level wrappers.
    EXPECT_NEAR(stats::normalQuantile(0.025),
                -stats::normalQuantile(0.975), 1e-9);
    EXPECT_NEAR(stats::normalZ(0.95), 1.959964, 1e-5);
    EXPECT_EQ(stats::ciHalfWidth(0.0, 0.95), 0.0);
    EXPECT_NEAR(stats::ciHalfWidth(0.01, 0.95), 0.0195996, 1e-6);
    EXPECT_EQ(stats::normalQuantile(0.0), -HUGE_VAL);
    EXPECT_EQ(stats::normalQuantile(1.0), HUGE_VAL);
}

// --- Closed-form class probabilities -----------------------------------

/**
 * Empirically classify @p draws realizations per sweep point and
 * require the closed-form probabilities to sit within 5 binomial
 * standard deviations — the analytic formulas mirror the samplers'
 * exact double thresholds, so only Monte Carlo noise separates them.
 */
void
expectClassProbsMatchEmpirical(const NoiseModel &noise,
                               const FeynmanExecutor &exec,
                               const std::vector<double> &factors,
                               std::size_t draws)
{
    const std::size_t npts = factors.size();
    noise.prepareSweep(exec, factors.data(), npts);
    std::vector<double> pE(npts), pZ(npts);
    ASSERT_TRUE(noise.classProbabilities(exec, factors.data(), npts,
                                         pE.data(), pZ.data()));

    std::vector<std::size_t> nEmpty(npts, 0), nZOnly(npts, 0);
    std::vector<FlatRealization> outs(npts);
    Rng rng(13013);
    for (std::size_t d = 0; d < draws; ++d) {
        ASSERT_TRUE(noise.sampleFlatSweep(exec, rng, factors.data(),
                                          npts, outs.data()));
        for (std::size_t j = 0; j < npts; ++j) {
            if (outs[j].empty())
                ++nEmpty[j];
            else if (outs[j].zOnly)
                ++nZOnly[j];
        }
    }
    for (std::size_t j = 0; j < npts; ++j) {
        SCOPED_TRACE("factor " + std::to_string(factors[j]));
        ASSERT_GE(pE[j], 0.0);
        ASSERT_GE(pZ[j], 0.0);
        ASSERT_LE(pE[j] + pZ[j], 1.0 + 1e-12);
        const double n = static_cast<double>(draws);
        auto tol = [&](double p) {
            return 5.0 * std::sqrt(std::max(p * (1.0 - p), 1e-12) /
                                   n);
        };
        EXPECT_NEAR(static_cast<double>(nEmpty[j]) / n, pE[j],
                    tol(pE[j]));
        EXPECT_NEAR(static_cast<double>(nZOnly[j]) / n, pZ[j],
                    tol(pZ[j]));
    }
}

TEST(AdaptiveClassProbs, MatchEmpiricalFrequenciesAllModels)
{
    Rng memRng(2026);
    Memory mem = Memory::random(3, memRng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FeynmanExecutor exec(qc.circuit);
    const std::vector<double> factors = {0.5, 1.0, 2.0};
    const std::size_t draws = 12000;

    {
        SCOPED_TRACE("qubit-channel depol");
        QubitChannelNoise noise(PauliRates::depolarizing(2e-3), 3);
        expectClassProbsMatchEmpirical(noise, exec, factors, draws);
    }
    {
        SCOPED_TRACE("gate depol weighted");
        GateNoise noise(PauliRates::depolarizing(2e-3));
        expectClassProbsMatchEmpirical(noise, exec, factors, draws);
    }
    {
        SCOPED_TRACE("gate X unweighted");
        GateNoise noise(PauliRates::bitFlip(3e-3), false);
        expectClassProbsMatchEmpirical(noise, exec, factors, draws);
    }
    {
        SCOPED_TRACE("device");
        DeviceNoise noise(PauliRates::depolarizing(1e-3),
                          PauliRates::depolarizing(4e-3));
        expectClassProbsMatchEmpirical(noise, exec, factors, draws);
    }
}

TEST(AdaptiveClassProbs, PureZNoiseHasNoGeneralStratum)
{
    Rng memRng(2027);
    Memory mem = Memory::random(3, memRng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FeynmanExecutor exec(qc.circuit);
    const std::vector<double> factors = {1.0, 4.0};

    GateNoise noise(PauliRates::phaseFlip(2e-3));
    noise.prepareSweep(exec, factors.data(), factors.size());
    std::vector<double> pE(factors.size()), pZ(factors.size());
    ASSERT_TRUE(noise.classProbabilities(exec, factors.data(),
                                         factors.size(), pE.data(),
                                         pZ.data()));
    for (std::size_t j = 0; j < factors.size(); ++j) {
        // txy = 0 for pure-Z rates, so P(Z-only) = 1 - P(empty)
        // EXACTLY and the general stratum has zero weight.
        EXPECT_EQ(pE[j] + pZ[j], 1.0);
        EXPECT_GT(pZ[j], 0.0);
    }
}

// --- Adaptive vs replay ------------------------------------------------

TEST(Adaptive, MatchesReplayWithinCiToleranceAllArchitectures)
{
    Rng rng(5551213);
    struct Arch
    {
        const char *name;
        QueryCircuit qc;
        unsigned width;
    };
    Memory mem3 = Memory::random(3, rng);
    Memory mem4 = Memory::random(4, rng);
    std::vector<Arch> archs;
    archs.push_back({"virtual", VirtualQram(2, 1).build(mem3), 3});
    archs.push_back({"bucket-brigade",
                     BucketBrigadeQram(3).build(mem3), 3});
    archs.push_back({"fanout", FanoutQram(3).build(mem3), 3});
    archs.push_back({"sqc", SqcBucketBrigade(2, 1).build(mem3), 3});
    archs.push_back({"select-swap",
                     SelectSwapQram(2, 1).build(mem3), 3});
    archs.push_back({"compact", CompactQram(2, 2).build(mem4), 4});

    struct NoiseCase
    {
        const char *name;
        PauliRates rates;
    };
    const NoiseCase noises[] = {
        {"X", PauliRates::bitFlip(4e-3)},
        {"Y", PauliRates{0.0, 4e-3, 0.0}},
        {"Z", PauliRates::phaseFlip(4e-3)},
        {"depol", PauliRates::depolarizing(4e-3)},
    };

    // 24 (arch, noise) combos: a bumped per-comparison confidence so
    // the suite's family-wise false-failure probability stays
    // negligible (z = 4.5 <-> ~3.4e-6 two-sided per comparison).
    const double zBumped = 4.5;
    const std::size_t replayShots = 256;
    const std::uint64_t seed = 909;

    AdaptivePolicy pol;
    pol.targetHalfWidth = 0.02;
    pol.confidence = 0.95;
    pol.minShots = 64;
    pol.maxShots = 2048;
    pol.batch = 256;

    for (const Arch &a : archs) {
        FidelityEstimator est(a.qc.circuit, a.qc.addressQubits,
                              a.qc.busQubit,
                              AddressSuperposition::uniform(a.width));
        est.setAdaptivePolicy(pol);
        for (const NoiseCase &nc : noises) {
            SCOPED_TRACE(std::string(a.name) + " / " + nc.name);
            GateNoise noise(nc.rates);

            const FidelityResult replay =
                est.estimate(noise, replayShots, seed);
            const AdaptiveReport rep =
                est.estimateAdaptive(noise, seed + 1);
            ASSERT_EQ(rep.results.size(), 1u);
            const FidelityResult &adaptive = rep.results.front();

            // Two independent estimates of the same quantity: their
            // difference is within z * sqrt(se_r^2 + se_a^2), plus
            // the binomial error of replay's empty-class frequency —
            // adaptive folds that class analytically, replay samples
            // it, and when every kept shot has the same fidelity the
            // sample stderrs alone understate that residual (shot
            // fidelities live in [0, 1], so the empty-count noise
            // propagates with a coefficient of at most 1).
            const double pE = rep.emptyProb[0];
            const double seEmpty = std::sqrt(
                pE * (1.0 - pE) /
                static_cast<double>(replayShots));
            const double tol =
                zBumped *
                (std::sqrt(replay.fullStderr * replay.fullStderr +
                           adaptive.fullStderr *
                               adaptive.fullStderr) +
                 seEmpty);
            EXPECT_NEAR(adaptive.full, replay.full,
                        std::max(tol, 1e-12));
            const double tolR =
                zBumped *
                (std::sqrt(replay.reducedStderr *
                               replay.reducedStderr +
                           adaptive.reducedStderr *
                               adaptive.reducedStderr) +
                 seEmpty);
            EXPECT_NEAR(adaptive.reduced, replay.reduced,
                        std::max(tolR, 1e-12));

            // Stratum accounting is self-consistent.
            EXPECT_EQ(rep.keptShots,
                      rep.zOnlyShots[0] + rep.generalShots[0]);
            EXPECT_EQ(adaptive.shots, rep.keptShots);
            if (nc.rates.x == 0.0 && nc.rates.y == 0.0) {
                // Pure-Z noise: the general stratum has exactly zero
                // weight and never receives a shot.
                EXPECT_EQ(rep.generalProb[0], 0.0);
                EXPECT_EQ(rep.generalShots[0], 0u);
            }
        }
    }
}

TEST(Adaptive, AllEmptyWorkloadIsExactWithZeroShots)
{
    Rng rng(321);
    Memory mem = Memory::random(3, rng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(3));
    AdaptivePolicy pol;
    pol.targetHalfWidth = 0.01;
    est.setAdaptivePolicy(pol);

    // Zero error rate: every draw is empty, the analytic term IS the
    // answer (the noiseless query has fidelity 1) and no draw is
    // ever sampled or evaluated.
    GateNoise noise(PauliRates::depolarizing(0.0));
    const AdaptiveReport rep = est.estimateAdaptive(noise, 5);
    ASSERT_EQ(rep.results.size(), 1u);
    EXPECT_EQ(rep.emptyProb[0], 1.0);
    EXPECT_NEAR(rep.results[0].full, 1.0, 1e-9);
    EXPECT_EQ(rep.results[0].fullStderr, 0.0);
    EXPECT_EQ(rep.results[0].shots, 0u);
    EXPECT_EQ(rep.keptShots, 0u);
    EXPECT_EQ(rep.rawDraws, 0u);
    EXPECT_TRUE(rep.converged[0]);
}

// --- Sharding ----------------------------------------------------------

/** An adaptive shard spec over [begin, end) of a @p total-draw plan. */
ShardSpec
adaptiveSpec(std::size_t begin, std::size_t end, std::size_t total,
             std::uint64_t seed, const std::vector<double> &factors,
             const AdaptivePolicy &pol, unsigned threads = 1)
{
    ShardSpec s;
    s.shotBegin = begin;
    s.shotEnd = end;
    s.totalShots = total;
    s.seed = seed;
    s.stream = ShotStream::Counter;
    s.factors = factors;
    s.threads = threads;
    s.mode = EstimateMode::Adaptive;
    s.policy = pol;
    return s;
}

/** Serialize with the wall-clock setup_seconds/compute_seconds zeroed.
 *  Timing is a reporting-only field: it legitimately differs between
 *  independent runs of the same work (and merge sums it), so the
 *  byte-determinism assertions below compare everything BUT timing —
 *  the same rule the orchestrator's duplicate cross-check applies. */
std::string
timelessJson(const PartialEstimate &p)
{
    PartialEstimate c = p;
    c.setupSeconds = 0.0;
    c.computeSeconds = 0.0;
    return c.toJson();
}

TEST(AdaptiveSharding, KeepAllMergeByteIdenticalForHeterogeneousShards)
{
    Rng rng(777);
    Memory mem = Memory::random(3, rng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(3));
    GateNoise noise(PauliRates::depolarizing(2e-3));
    const std::vector<double> factors = {0.5, 1.0, 2.0};
    const std::size_t total = 600;
    const std::uint64_t seed = 42;

    // The default policy (no CI target) keeps every non-empty draw:
    // keep decisions depend only on each draw's class, so any
    // partition of the draw range — including deliberately unequal
    // shard sizes — reassembles the identical kept-row set.
    AdaptivePolicy keepAll;
    const PartialEstimate single = est.runShard(
        noise, adaptiveSpec(0, total, total, seed, factors, keepAll));
    EXPECT_TRUE(single.adaptive);
    EXPECT_GT(single.rowDraw.size(), 0u);

    std::vector<PartialEstimate> parts;
    parts.push_back(est.runShard(
        noise, adaptiveSpec(0, 250, total, seed, factors, keepAll)));
    parts.push_back(est.runShard(
        noise,
        adaptiveSpec(250, 600, total, seed, factors, keepAll)));
    PartialEstimate merged;
    std::string err;
    ASSERT_TRUE(mergePartials(parts, merged, &err)) << err;
    EXPECT_EQ(timelessJson(merged), timelessJson(single));
    EXPECT_EQ(merged.resultJson(), single.resultJson());

    // A replay partial of the same plan must refuse to merge with an
    // adaptive one.
    const PartialEstimate replayPart = est.runShard(
        noise,
        SweepPlan::partition(total, 2, seed, factors).shards[0]);
    std::string why;
    EXPECT_FALSE(merged.canMerge(replayPart, &why));
    EXPECT_EQ(why, "estimate modes differ");
}

TEST(AdaptiveSharding, ThreadCountNeverChangesTheRows)
{
    Rng rng(888);
    Memory mem = Memory::random(3, rng);
    QueryCircuit qc = FanoutQram(3).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(3));
    GateNoise noise(PauliRates::depolarizing(3e-3));
    const std::vector<double> factors = {1.0, 2.0};

    AdaptivePolicy pol;
    pol.targetHalfWidth = 0.03;
    pol.minShots = 32;
    pol.maxShots = 512;
    pol.batch = 64;
    const PartialEstimate one = est.runShard(
        noise, adaptiveSpec(0, 1500, 1500, 7, factors, pol, 1));
    const PartialEstimate four = est.runShard(
        noise, adaptiveSpec(0, 1500, 1500, 7, factors, pol, 4));
    // Keep decisions run on the coordinator and per-shot values never
    // depend on evaluation chunking, so the partials are identical.
    EXPECT_EQ(timelessJson(one), timelessJson(four));
}

TEST(AdaptiveSharding, StoppingMergeOrderInvariantAndJsonExact)
{
    Rng rng(999);
    Memory mem = Memory::random(3, rng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(3));
    GateNoise noise(PauliRates::depolarizing(2e-3));
    const std::vector<double> factors = {0.5, 1.0, 2.0};
    const std::size_t total = 900;
    const std::uint64_t seed = 11;

    AdaptivePolicy pol;
    pol.targetHalfWidth = 0.05;
    pol.minShots = 16;
    pol.maxShots = 256;
    pol.batch = 64;

    // Three shards with unequal draw ranges, each stopping on its own
    // CI; merging is valid in any order and byte-deterministic.
    std::vector<PartialEstimate> parts;
    parts.push_back(est.runShard(
        noise, adaptiveSpec(0, 200, total, seed, factors, pol)));
    parts.push_back(est.runShard(
        noise, adaptiveSpec(200, 500, total, seed, factors, pol)));
    parts.push_back(est.runShard(
        noise, adaptiveSpec(500, 900, total, seed, factors, pol)));

    for (PartialEstimate &p : parts) {
        p.workload = "adaptive-test";
        // Exact JSON round-trip, including the adaptive extension.
        PartialEstimate back;
        std::string err;
        ASSERT_TRUE(
            PartialEstimate::fromJson(p.toJson(), back, &err))
            << err;
        EXPECT_EQ(back.toJson(), p.toJson());
        EXPECT_TRUE(back.adaptive);
        EXPECT_EQ(back.probEmpty, p.probEmpty);
        EXPECT_EQ(back.probZOnly, p.probZOnly);
        EXPECT_EQ(back.rowDraw, p.rowDraw);
        EXPECT_EQ(back.rowPoint, p.rowPoint);
        EXPECT_EQ(back.rowStratum, p.rowStratum);
        EXPECT_EQ(back.drawsUsed, p.drawsUsed);
        EXPECT_EQ(back.zCount, p.zCount);
        EXPECT_EQ(back.gCount, p.gCount);
    }

    PartialEstimate forward, backward;
    std::string err;
    ASSERT_TRUE(mergePartials(parts, forward, &err)) << err;
    std::vector<PartialEstimate> reversed = {parts[2], parts[0],
                                             parts[1]};
    ASSERT_TRUE(mergePartials(reversed, backward, &err)) << err;
    // Timing sums are float additions whose grouping depends on merge
    // order, so the byte-determinism claim excludes them.
    EXPECT_EQ(timelessJson(forward), timelessJson(backward));
    EXPECT_EQ(forward.resultJson(), backward.resultJson());

    // Tampered stratum sums must be rejected on load.
    PartialEstimate bad = parts[0];
    if (!bad.zSumF.empty() && bad.zCount[1] > 0.0) {
        bad.zSumF[1] += 0.5;
        PartialEstimate back;
        EXPECT_FALSE(
            PartialEstimate::fromJson(bad.toJson(), back, &err));
    }
}

TEST(AdaptiveSharding, SweepRolloverReachesTheSlowPoints)
{
    Rng rng(1212);
    Memory mem = Memory::random(3, rng);
    QueryCircuit qc = BucketBrigadeQram(3).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(3));
    GateNoise noise(PauliRates::depolarizing(1e-3));
    // A wide factor spread: low points converge quickly (almost all
    // empty, tiny sampled-stratum weight), high points need many more
    // kept shots. With the pooled budget, the budget the low points
    // never used must flow to the high ones.
    const std::vector<double> factors = {0.125, 4.0};

    AdaptivePolicy pol;
    pol.targetHalfWidth = 0.02;
    pol.minShots = 32;
    pol.maxShots = 1024;
    pol.batch = 128;
    est.setAdaptivePolicy(pol);
    const AdaptiveReport rep =
        est.estimateSweepAdaptive(noise, factors, 77);
    ASSERT_EQ(rep.results.size(), 2u);
    const std::size_t kept0 =
        rep.zOnlyShots[0] + rep.generalShots[0];
    const std::size_t kept1 =
        rep.zOnlyShots[1] + rep.generalShots[1];
    EXPECT_LT(rep.emptyProb[1], rep.emptyProb[0]);
    // The noisier point consumed (much) more of the pooled budget.
    EXPECT_GT(kept1, kept0);
    EXPECT_EQ(rep.keptShots, kept0 + kept1);
}

} // namespace
} // namespace qramsim
