/**
 * @file
 * The resident estimation server CLI.
 *
 *     qramsim_server --socket PATH [--threads N]
 *                    [--compiled-cache N] [--result-cache N]
 *                    [--spill DIR] [--max-width N] [--max-shots N]
 *                    [--max-frame BYTES]
 *
 * Listens on a Unix-domain socket for framed `qramsim_shard run`
 * requests (protocol: src/sim/server.hh) and executes them over
 * resident compiled-circuit and result caches, so repeated shards of
 * the same sweep pay zero setup and identical queries pay zero
 * compute. Run it next to `qramsim_drive --server PATH`.
 *
 * Prints "listening on PATH" once ready (clients can also just
 * retry connect), then serves until SIGINT/SIGTERM, exiting 0 after
 * a clean drain. Exit 2 on bad flags, 1 when the socket cannot be
 * bound.
 */

#include <csignal>
#include <cstdio>
#include <cstring>

#include "common/env.hh"
#include "sim/server.hh"

using namespace qramsim;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: qramsim_server --socket PATH [--threads N]\n"
        "                      [--compiled-cache N] [--result-cache "
        "N]\n"
        "                      [--spill DIR] [--max-width N]\n"
        "                      [--max-shots N] [--max-frame BYTES]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    srv::ServerConfig cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s wants a value\n",
                             flag.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        auto uintVal = [&](unsigned long cap,
                           unsigned long &dst) -> bool {
            const char *v = value();
            if (!v)
                return false;
            if (!env::parseUnsigned(v, cap, dst)) {
                std::fprintf(stderr,
                             "malformed value '%s' for %s\n", v,
                             flag.c_str());
                return false;
            }
            return true;
        };
        unsigned long u = 0;
        if (flag == "--socket") {
            const char *v = value();
            if (!v)
                return usage();
            cfg.socketPath = v;
        } else if (flag == "--threads") {
            if (!uintVal(1ul << 16, u))
                return usage();
            cfg.threads = static_cast<unsigned>(u);
        } else if (flag == "--compiled-cache") {
            if (!uintVal(1ul << 16, u))
                return usage();
            cfg.compiledCapacity = u;
        } else if (flag == "--result-cache") {
            if (!uintVal(1ul << 24, u))
                return usage();
            cfg.resultCapacity = u;
        } else if (flag == "--spill") {
            const char *v = value();
            if (!v)
                return usage();
            cfg.spillDir = v;
        } else if (flag == "--max-width") {
            if (!uintVal(64, u))
                return usage();
            cfg.maxAddressWidth = static_cast<unsigned>(u);
        } else if (flag == "--max-shots") {
            if (!uintVal(1ul << 30, u))
                return usage();
            cfg.maxShots = u;
        } else if (flag == "--max-frame") {
            if (!uintVal(1ul << 31, u))
                return usage();
            cfg.maxFrameBytes = static_cast<std::uint32_t>(u);
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return usage();
        }
    }
    if (cfg.socketPath.empty()) {
        std::fprintf(stderr, "--socket is required\n");
        return usage();
    }

    // Mask SIGINT/SIGTERM BEFORE any thread exists so every thread
    // inherits the mask and sigwait below owns delivery — otherwise
    // a signal landing on a worker thread takes the default
    // (process-killing) action instead of the clean drain.
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);

    srv::Server server(cfg);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "cannot start server: %s\n",
                     err.c_str());
        return 1;
    }
    std::printf("listening on %s\n", cfg.socketPath.c_str());
    std::fflush(stdout);

    int sig = 0;
    sigwait(&set, &sig);

    server.stop();
    const srv::Server::Stats st = server.stats();
    std::fprintf(stderr,
                 "served %llu requests (%llu result hits, %llu "
                 "coalesced, %llu computed, %llu builds)\n",
                 static_cast<unsigned long long>(st.requests),
                 static_cast<unsigned long long>(st.resultHits),
                 static_cast<unsigned long long>(st.resultCoalesced),
                 static_cast<unsigned long long>(st.computed),
                 static_cast<unsigned long long>(st.compiledBuilds));
    return 0;
}
