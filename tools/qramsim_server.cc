/**
 * @file
 * The resident estimation server CLI — and, with `--broker`, a
 * work-pulling broker worker.
 *
 *     qramsim_server --socket PATH [--threads N]
 *                    [--compiled-cache N] [--result-cache N]
 *                    [--spill DIR] [--spill-cap BYTES]
 *                    [--idle-timeout SEC] [--max-width N]
 *                    [--max-shots N] [--max-frame BYTES]
 *     qramsim_server --broker PATH [--name NAME] [... same knobs]
 *
 * Socket mode listens on a Unix-domain socket for framed
 * `qramsim_shard run` requests (protocol: src/sim/server.hh) and
 * executes them over resident compiled-circuit and result caches, so
 * repeated shards of the same sweep pay zero setup and identical
 * queries pay zero compute. Run it next to
 * `qramsim_drive --server PATH`.
 *
 * Broker mode inverts the transport: the same resident Server
 * executes shards, but instead of listening it PULLS assignments
 * from a qramsim_broker (protocol: src/sim/broker.hh), heartbeats
 * its leases on the broker's announced interval, and commits each
 * result. This is the only mode that consults QRAMSIM_FAULT
 * (kill-on-pull / drop-heartbeat / lease-stall) — faults are scoped
 * to the pulled shard's global shot range exactly like the shard
 * CLI's, and the resident socket path still never injects.
 *
 * Prints "listening on PATH" / "worker NAME pulling from PATH" once
 * ready, then serves until SIGINT/SIGTERM, exiting 0 after a clean
 * drain. Exit 2 on bad flags, 1 when the socket/broker cannot be
 * reached.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>

#include <signal.h>
#include <unistd.h>

#include "common/env.hh"
#include "common/fault.hh"
#include "sim/broker.hh"
#include "sim/server.hh"
#include "tools/workload.hh"

using namespace qramsim;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: qramsim_server --socket PATH | --broker PATH\n"
        "                      [--name NAME] [--threads N]\n"
        "                      [--compiled-cache N] [--result-cache "
        "N]\n"
        "                      [--spill DIR] [--spill-cap BYTES]\n"
        "                      [--idle-timeout SEC] [--max-width N]\n"
        "                      [--max-shots N] [--max-frame BYTES]\n");
    return 2;
}

/** Sleep @p seconds in small slices so @p stop stays responsive. */
void
sleepInterruptible(double seconds, const std::atomic<bool> &stop)
{
    auto left = std::chrono::duration<double>(seconds);
    while (left.count() > 0.0 && !stop.load()) {
        const auto slice =
            std::min(left, std::chrono::duration<double>(0.05));
        std::this_thread::sleep_for(slice);
        left -= slice;
    }
}

/**
 * The broker worker loop: register, pull, execute on the resident
 * @p server, heartbeat the lease while computing, commit. Runs until
 * @p stop. Returns the count of shards this worker committed.
 */
std::size_t
runWorker(srv::Server &server, const std::string &brokerPath,
          const std::string &name, const std::atomic<bool> &stop)
{
    // Worker-side fault kinds only: the broker owns journal-truncate
    // and the classic shard kinds belong to qramsim_shard.
    std::vector<fault::Spec> faults;
    for (const fault::Spec &s : fault::fromEnv())
        if (s.kind == fault::Kind::KillOnPull ||
            s.kind == fault::Kind::DropHeartbeat ||
            s.kind == fault::Kind::LeaseStall)
            faults.push_back(s);

    double heartbeatSec = 1.0, pollSec = 0.05;
    bool registered = false;
    while (!stop.load()) {
        brk::Msg req, resp;
        req.type = "register";
        req.worker = name;
        std::string err;
        if (brk::roundTrip(brokerPath, req, resp, &err) &&
            resp.type == "registered") {
            if (resp.heartbeatSec > 0.0)
                heartbeatSec = resp.heartbeatSec;
            if (resp.pollSec > 0.0)
                pollSec = resp.pollSec;
            registered = true;
            break;
        }
        sleepInterruptible(0.2, stop);
    }
    if (!registered)
        return 0;
    std::printf("worker %s pulling from %s\n", name.c_str(),
                brokerPath.c_str());
    std::fflush(stdout);

    std::size_t committed = 0;
    while (!stop.load()) {
        brk::Msg pull, task;
        pull.type = "pull";
        pull.worker = name;
        std::string err;
        if (!brk::roundTrip(brokerPath, pull, task, &err)) {
            sleepInterruptible(0.2, stop); // broker gone or restarting
            continue;
        }
        if (task.type != "assign") {
            sleepInterruptible(
                task.pollSec > 0.0 ? task.pollSec : pollSec, stop);
            continue;
        }

        // Scope faults to the pulled shard's global shot range —
        // the same selector the shard CLI uses, so a test can aim a
        // fault at "the worker that got shard k".
        std::size_t shotBegin = 0, shotEnd = 0;
        {
            std::vector<std::string> copy(task.args);
            std::vector<char *> argv;
            argv.reserve(copy.size());
            for (std::string &a : copy)
                argv.push_back(&a[0]);
            tool::RunOptions opt;
            ShardSpec spec;
            if (tool::parseRunFlags(static_cast<int>(argv.size()),
                                    argv.data(), opt) &&
                tool::cutShardSpec(opt, spec)) {
                shotBegin = spec.shotBegin;
                shotEnd = spec.shotEnd;
            }
        }
        const fault::Spec *armed =
            fault::arm(faults, shotBegin, shotEnd);
        if (armed && armed->kind == fault::Kind::KillOnPull) {
            // Die holding the lease: the broker must notice the
            // silence and re-dispatch.
            ::kill(::getpid(), SIGKILL);
        }
        const bool dropHeartbeat =
            armed && armed->kind == fault::Kind::DropHeartbeat;
        const double stallSec =
            armed && armed->kind == fault::Kind::LeaseStall
                ? armed->param
                : 0.0;

        std::atomic<bool> hbStop{false};
        std::thread hb;
        if (!dropHeartbeat) {
            const std::uint64_t lease = task.lease;
            hb = std::thread([&, lease] {
                std::uint64_t progress = 0;
                while (!hbStop.load()) {
                    // lease-stall heartbeats with FROZEN progress:
                    // the broker sees a live worker but no advance,
                    // so the lease expires on schedule.
                    if (stallSec <= 0.0)
                        ++progress;
                    brk::Msg beat, ok;
                    beat.type = "heartbeat";
                    beat.worker = name;
                    beat.lease = lease;
                    beat.progress = progress;
                    brk::roundTrip(brokerPath, beat, ok);
                    sleepInterruptible(heartbeatSec, hbStop);
                }
            });
        }
        if (stallSec > 0.0)
            sleepInterruptible(stallSec, stop);

        const srv::ShardResponse r = server.handle(task.args);

        brk::Msg commit;
        commit.type = "commit";
        commit.worker = name;
        commit.lease = task.lease;
        commit.job = task.job;
        commit.shard = task.shard;
        commit.status = static_cast<std::uint64_t>(r.status);
        commit.error = r.error;
        commit.payload = r.payload;
        for (int attempt = 0; attempt < 5; ++attempt) {
            brk::Msg ack;
            if (brk::roundTrip(brokerPath, commit, ack)) {
                ++committed;
                break;
            }
            sleepInterruptible(0.2, stop);
            if (stop.load())
                break;
        }
        hbStop.store(true);
        if (hb.joinable())
            hb.join();
    }
    return committed;
}

} // namespace

int
main(int argc, char **argv)
{
    srv::ServerConfig cfg;
    std::string brokerPath, workerName;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s wants a value\n",
                             flag.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        auto uintVal = [&](unsigned long cap,
                           unsigned long &dst) -> bool {
            const char *v = value();
            if (!v)
                return false;
            if (!env::parseUnsigned(v, cap, dst)) {
                std::fprintf(stderr,
                             "malformed value '%s' for %s\n", v,
                             flag.c_str());
                return false;
            }
            return true;
        };
        unsigned long u = 0;
        if (flag == "--socket") {
            const char *v = value();
            if (!v)
                return usage();
            cfg.socketPath = v;
        } else if (flag == "--broker") {
            const char *v = value();
            if (!v)
                return usage();
            brokerPath = v;
        } else if (flag == "--name") {
            const char *v = value();
            if (!v)
                return usage();
            workerName = v;
        } else if (flag == "--threads") {
            if (!uintVal(1ul << 16, u))
                return usage();
            cfg.threads = static_cast<unsigned>(u);
        } else if (flag == "--compiled-cache") {
            if (!uintVal(1ul << 16, u))
                return usage();
            cfg.compiledCapacity = u;
        } else if (flag == "--result-cache") {
            if (!uintVal(1ul << 24, u))
                return usage();
            cfg.resultCapacity = u;
        } else if (flag == "--spill") {
            const char *v = value();
            if (!v)
                return usage();
            cfg.spillDir = v;
        } else if (flag == "--spill-cap") {
            if (!uintVal(1ul << 40, u))
                return usage();
            cfg.spillCapBytes = u;
        } else if (flag == "--idle-timeout") {
            const char *v = value();
            if (!v)
                return usage();
            double d = 0.0;
            if (!env::parseDouble(v, d) || d < 0.0) {
                std::fprintf(stderr,
                             "malformed value '%s' for %s\n", v,
                             flag.c_str());
                return usage();
            }
            cfg.idleTimeoutSec = d;
        } else if (flag == "--max-width") {
            if (!uintVal(64, u))
                return usage();
            cfg.maxAddressWidth = static_cast<unsigned>(u);
        } else if (flag == "--max-shots") {
            if (!uintVal(1ul << 30, u))
                return usage();
            cfg.maxShots = u;
        } else if (flag == "--max-frame") {
            if (!uintVal(1ul << 31, u))
                return usage();
            cfg.maxFrameBytes = static_cast<std::uint32_t>(u);
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return usage();
        }
    }
    if (cfg.socketPath.empty() == brokerPath.empty()) {
        std::fprintf(stderr,
                     "exactly one of --socket / --broker is "
                     "required\n");
        return usage();
    }

    // Mask SIGINT/SIGTERM BEFORE any thread exists so every thread
    // inherits the mask and sigwait below owns delivery — otherwise
    // a signal landing on a worker thread takes the default
    // (process-killing) action instead of the clean drain.
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);

    srv::Server server(cfg);

    if (!brokerPath.empty()) {
        // Broker worker: the Server runs headless (no socket); a
        // signal thread turns SIGINT/SIGTERM into a stop flag the
        // pull loop polls between shards.
        if (workerName.empty())
            workerName = "w" + std::to_string(::getpid());
        std::atomic<bool> stop{false};
        std::thread sigThread([&] {
            int sig = 0;
            sigwait(&set, &sig);
            stop.store(true);
        });
        const std::size_t committed =
            runWorker(server, brokerPath, workerName, stop);
        if (!stop.load())
            ::kill(::getpid(), SIGTERM); // unblock sigwait
        sigThread.join();
        const srv::Server::Stats st = server.stats();
        std::fprintf(
            stderr,
            "worker %s committed %zu shards (%llu result hits, "
            "%llu computed, %llu builds)\n",
            workerName.c_str(), committed,
            static_cast<unsigned long long>(st.resultHits),
            static_cast<unsigned long long>(st.computed),
            static_cast<unsigned long long>(st.compiledBuilds));
        return 0;
    }

    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "cannot start server: %s\n",
                     err.c_str());
        return 1;
    }
    std::printf("listening on %s\n", cfg.socketPath.c_str());
    std::fflush(stdout);

    int sig = 0;
    sigwait(&set, &sig);

    server.stop();
    const srv::Server::Stats st = server.stats();
    std::fprintf(stderr,
                 "served %llu requests (%llu result hits, %llu "
                 "coalesced, %llu computed, %llu builds, %llu idle "
                 "timeouts)\n",
                 static_cast<unsigned long long>(st.requests),
                 static_cast<unsigned long long>(st.resultHits),
                 static_cast<unsigned long long>(st.resultCoalesced),
                 static_cast<unsigned long long>(st.computed),
                 static_cast<unsigned long long>(st.compiledBuilds),
                 static_cast<unsigned long long>(
                     st.transportTimeouts));
    return 0;
}
