/**
 * @file
 * Sharded-estimation CLI: execute one shard of a fidelity estimate or
 * eps_r sweep, or merge shard partials into the final result — the
 * process/host-level face of sim/sharding.hh, so sweeps can be farmed
 * out by any job runner (qramsim_drive, xargs, slurm, make -j, ssh
 * loops, ...).
 *
 *   qramsim_shard run   [workload flags] --shard I/N [--out FILE]
 *   qramsim_shard merge [--out FILE] partial1.json partial2.json ...
 *
 * `run` evaluates shard I of the N-way partition of the workload's
 * shot budget and writes its PartialEstimate JSON (atomically, via
 * write-temp-then-rename — a killed worker never leaves a torn
 * partial). `merge` folds any complete set of partials and writes the
 * FidelityResult JSON, which is byte-identical for every partition of
 * the same workload (the CI sharded smoke leg diffs a 2-way merge
 * against the 1-way run).
 *
 * Exit codes follow the supervision contract of sim/orchestrator.hh
 * (ToolExit) — qramsim_drive classifies retryability from them:
 *
 *   0  success
 *   2  usage: unknown flag/arch/noise, malformed value, shard index
 *      out of range (permanent — the command line itself is wrong)
 *   3  I/O: an input could not be read or the output could not be
 *      written (retryable)
 *   4  runtime: inputs read fine but are invalid — unparsable
 *      partial, merge mismatch (permanent)
 *   5  injected fault (the QRAMSIM_FAULT `exit` kind's default;
 *      retryable)
 *
 * Fault injection: QRAMSIM_FAULT (see common/fault.hh) deterministically
 * makes `run` crash, stall, truncate its output, corrupt its JSON, or
 * exit with a chosen code, keyed by global shot index — the testing
 * backbone of the orchestrator's recovery paths. Honest runs never
 * consult it.
 *
 * Workload flags (all have defaults; the fingerprint embedded in the
 * partials guards against merging mismatched runs):
 *
 *   --arch A      bb | fanout | virtual | sqc | select-swap | compact
 *   --m M         QRAM width (address width for bb/fanout)
 *   --k K         SQC/select width (virtual, sqc, select-swap,
 *                 compact; address width is m+k)
 *   --mem-seed S  seed of the random classical memory (default 7)
 *   --noise N     qubit-x | qubit-y | qubit-z | qubit-depol |
 *                 gate-x | gate-y | gate-z | gate-depol | device
 *   --eps E       base error rate (device: the 1q rate)
 *   --eps2 E      device 2q rate
 *   --rounds R    qubit-channel logical rounds (0 = every moment)
 *   --unweighted  flat per-gate rates for the gate channels
 *   --factors F1,F2,...   eps_r sweep scale factors (omit for a
 *                         plain estimate)
 *   --shots S --seed S    Monte Carlo budget
 *   --stream counter|sequential   shot RNG streams (default counter:
 *                 partition-invariant; sequential reproduces the
 *                 sequential estimator but fast-forwards shot 0..b)
 *   --threads T   in-process threads for this shard
 *   --pipeline on|off   force the pipelined shot executor on or off
 *                 (default: estimator default / QRAMSIM_PIPELINE; the
 *                 pipeline only engages for counter streams with
 *                 threads >= 2 and is bit-identical either way)
 *   --engine ensemble|slots|scalar  replay-engine pin (ensemble =
 *                                 op-major block replay, slots = the
 *                                 shot-major slot-loop baseline)
 *   --tier scalar|avx2|avx512     SIMD tier pin
 *   --adaptive    run the shard under EstimateMode::Adaptive: --shots
 *                 becomes the raw-draw budget, the empty class is
 *                 folded in analytically and only kept draws are
 *                 evaluated (counter stream only)
 *   --target-ci W       adaptive CI half-width target (<= 0, the
 *                       default, keeps every non-empty draw — the
 *                       partition-invariant mode)
 *   --confidence C      adaptive CI confidence level (default 0.95)
 *   --min-shots N --max-shots N --batch N   adaptive stopping floor,
 *                       pooled per-point kept-shot budget, and draws
 *                       per stopping check
 *
 * Numeric flag values are parsed strictly (common/env.hh): signs,
 * whitespace, trailing junk, or overflow print a diagnostic and exit
 * with the usage code instead of being silently truncated.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include "common/atomicfile.hh"
#include "common/fault.hh"
#include "sim/orchestrator.hh"
#include "workload.hh"

using namespace qramsim;

namespace {

/** Write @p content to @p path ("" or "-" = stdout). File targets go
 *  through atomicWriteFile, so a crash mid-write leaves no torn
 *  partial behind a success-looking file. */
bool
writeOutput(const std::string &path, const std::string &content)
{
    if (path.empty() || path == "-") {
        // A truncated partial must not exit 0: the job runner would
        // record success and the corruption would only surface (at
        // best) as a later merge failure.
        const bool ok =
            std::fwrite(content.data(), 1, content.size(), stdout) ==
                content.size() &&
            std::fflush(stdout) == 0;
        if (!ok)
            std::fprintf(stderr, "short write to stdout\n");
        return ok;
    }
    std::string err;
    if (!atomicWriteFile(path, content, &err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return false;
    }
    return true;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: qramsim_shard run [workload flags] --shots S "
        "--seed S --shard I/N [--out FILE]\n"
        "       qramsim_shard merge [--out FILE] partial.json ...\n"
        "see the file header of tools/qramsim_shard.cc for the "
        "workload flags and the exit-code contract\n");
    return kToolExitUsage;
}

int
cmdRun(int argc, char **argv)
{
    tool::RunOptions opt;
    if (!tool::parseRunFlags(argc, argv, opt))
        return usage();

    ShardSpec spec;
    if (!tool::cutShardSpec(opt, spec))
        return kToolExitUsage;

    // Fault injection: the armed spec (if any) is the one whose
    // global shot index falls in THIS shard's range, so any fault in
    // QRAMSIM_FAULT deterministically selects one worker of the job.
    const std::vector<fault::Spec> faults = fault::fromEnv();
    const fault::Spec *injected =
        fault::arm(faults, spec.shotBegin, spec.shotEnd);
    if (injected) {
        switch (injected->kind) {
          case fault::Kind::Crash:
            // Die the way a segfaulting or OOM-killed worker dies:
            // no output, no exit code, just a signal death.
            ::kill(::getpid(), SIGKILL);
            break;
          case fault::Kind::Exit:
            return static_cast<int>(injected->param);
          case fault::Kind::Stall:
            // A pure straggler: sleep, then complete normally (if
            // the orchestrator's deadline doesn't kill us first).
            std::this_thread::sleep_for(std::chrono::duration<double>(
                injected->param));
            break;
          default:
            break; // truncate/corrupt fire at write time below
        }
    }

    const auto setup0 = std::chrono::steady_clock::now();
    QueryCircuit qc = opt.w.build();
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(
                              opt.w.addressWidth()));
    applyShardPins(est, spec);
    if (opt.pipeline >= 0)
        est.setPipeline(opt.pipeline != 0);
    std::unique_ptr<NoiseModel> noise = opt.w.makeNoise();
    const double setupSec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      setup0)
            .count();

    PartialEstimate part = est.runShard(*noise, spec);
    part.workload = opt.w.fingerprint(opt.shots);
    part.setupSeconds = setupSec;
    std::string payload = part.toJson();

    if (injected && injected->kind == fault::Kind::Truncate) {
        // A torn file behind a success exit code: write a prefix
        // NON-atomically — exactly the corruption atomicWriteFile
        // exists to prevent, so downstream validation must catch it.
        const std::size_t keep =
            injected->param >= 0.0
                ? std::min(payload.size(),
                           static_cast<std::size_t>(injected->param))
                : payload.size() / 2;
        std::FILE *f = opt.out.empty() || opt.out == "-"
                           ? stdout
                           : std::fopen(opt.out.c_str(), "wb");
        if (f) {
            std::fwrite(payload.data(), 1, keep, f);
            if (f != stdout)
                std::fclose(f);
        }
        return kToolExitOk; // the lie is the point
    }
    if (injected && injected->kind == fault::Kind::Corrupt)
        fault::corruptJson(payload);

    return writeOutput(opt.out, payload) ? kToolExitOk : kToolExitIo;
}

int
cmdMerge(int argc, char **argv)
{
    std::string out;
    std::vector<std::string> files;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--out wants a value\n");
                return usage();
            }
            out = argv[++i];
        } else if (std::strncmp(argv[i], "--", 2) == 0) {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return usage();
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.empty())
        return usage();

    std::vector<PartialEstimate> parts;
    parts.reserve(files.size());
    for (const std::string &path : files) {
        std::string json, err;
        if (!tool::readFile(path, json)) {
            std::fprintf(stderr, "cannot read %s\n", path.c_str());
            return kToolExitIo;
        }
        PartialEstimate p;
        if (!PartialEstimate::fromJson(json, p, &err)) {
            std::fprintf(stderr, "%s: %s\n", path.c_str(),
                         err.c_str());
            return kToolExitRuntime;
        }
        parts.push_back(std::move(p));
    }
    PartialEstimate merged;
    std::string err;
    if (!mergePartials(std::move(parts), merged, &err)) {
        std::fprintf(stderr, "merge failed: %s\n", err.c_str());
        return kToolExitRuntime;
    }
    return writeOutput(out, merged.resultJson()) ? kToolExitOk
                                                 : kToolExitIo;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "run") == 0)
        return cmdRun(argc - 2, argv + 2);
    if (std::strcmp(argv[1], "merge") == 0)
        return cmdMerge(argc - 2, argv + 2);
    return usage();
}
