/**
 * @file
 * Sharded-estimation CLI: execute one shard of a fidelity estimate or
 * eps_r sweep, or merge shard partials into the final result — the
 * process/host-level face of sim/sharding.hh, so sweeps can be farmed
 * out by any job runner (xargs, slurm, make -j, ssh loops, ...).
 *
 *   qramsim_shard run   [workload flags] --shard I/N [--out FILE]
 *   qramsim_shard merge [--out FILE] partial1.json partial2.json ...
 *
 * `run` evaluates shard I of the N-way partition of the workload's
 * shot budget and writes its PartialEstimate JSON. `merge` folds any
 * complete set of partials and writes the FidelityResult JSON, which
 * is byte-identical for every partition of the same workload (the CI
 * sharded smoke leg diffs a 2-way merge against the 1-way run).
 *
 * Workload flags (all have defaults; the fingerprint embedded in the
 * partials guards against merging mismatched runs):
 *
 *   --arch A      bb | fanout | virtual | sqc | select-swap | compact
 *   --m M         QRAM width (address width for bb/fanout)
 *   --k K         SQC/select width (virtual, sqc, select-swap,
 *                 compact; address width is m+k)
 *   --mem-seed S  seed of the random classical memory (default 7)
 *   --noise N     qubit-x | qubit-y | qubit-z | qubit-depol |
 *                 gate-x | gate-y | gate-z | gate-depol | device
 *   --eps E       base error rate (device: the 1q rate)
 *   --eps2 E      device 2q rate
 *   --rounds R    qubit-channel logical rounds (0 = every moment)
 *   --unweighted  flat per-gate rates for the gate channels
 *   --factors F1,F2,...   eps_r sweep scale factors (omit for a
 *                         plain estimate)
 *   --shots S --seed S    Monte Carlo budget
 *   --stream counter|sequential   shot RNG streams (default counter:
 *                 partition-invariant; sequential reproduces the
 *                 sequential estimator but fast-forwards shot 0..b)
 *   --threads T   in-process threads for this shard
 *   --pipeline on|off   force the pipelined shot executor on or off
 *                 (default: estimator default / QRAMSIM_PIPELINE; the
 *                 pipeline only engages for counter streams with
 *                 threads >= 2 and is bit-identical either way)
 *   --engine ensemble|slots|scalar  replay-engine pin (ensemble =
 *                                 op-major block replay, slots = the
 *                                 shot-major slot-loop baseline)
 *   --tier scalar|avx2|avx512     SIMD tier pin
 *   --adaptive    run the shard under EstimateMode::Adaptive: --shots
 *                 becomes the raw-draw budget, the empty class is
 *                 folded in analytically and only kept draws are
 *                 evaluated (counter stream only)
 *   --target-ci W       adaptive CI half-width target (<= 0, the
 *                       default, keeps every non-empty draw — the
 *                       partition-invariant mode)
 *   --confidence C      adaptive CI confidence level (default 0.95)
 *   --min-shots N --max-shots N --batch N   adaptive stopping floor,
 *                       pooled per-point kept-shot budget, and draws
 *                       per stopping check
 *
 * Numeric flag values are parsed strictly (common/env.hh): signs,
 * whitespace, trailing junk, or overflow print a diagnostic and exit
 * nonzero instead of being silently truncated.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/env.hh"
#include "qram/baselines.hh"
#include "qram/bucket_brigade.hh"
#include "qram/compact.hh"
#include "qram/fanout.hh"
#include "qram/select_swap.hh"
#include "qram/virtual_qram.hh"
#include "sim/fidelity.hh"
#include "sim/noise.hh"
#include "sim/sharding.hh"

using namespace qramsim;

namespace {

struct Workload
{
    std::string arch = "bb";
    unsigned m = 3;
    unsigned k = 0;
    std::uint64_t memSeed = 7;
    std::string noise = "gate-z";
    double eps = 1e-3;
    double eps2 = 1e-3;
    unsigned rounds = 0;
    bool weighted = true;

    unsigned
    addressWidth() const
    {
        return (arch == "bb" || arch == "fanout") ? m : m + k;
    }

    QueryCircuit
    build() const
    {
        Rng rng(memSeed);
        Memory mem = Memory::random(addressWidth(), rng);
        if (arch == "bb")
            return BucketBrigadeQram(m).build(mem);
        if (arch == "fanout")
            return FanoutQram(m).build(mem);
        if (arch == "virtual")
            return VirtualQram(m, k).build(mem);
        if (arch == "sqc")
            return SqcBucketBrigade(m, k).build(mem);
        if (arch == "select-swap")
            return SelectSwapQram(m, k).build(mem);
        if (arch == "compact")
            return CompactQram(m, k).build(mem);
        std::fprintf(stderr, "unknown --arch '%s'\n", arch.c_str());
        std::exit(2);
    }

    std::unique_ptr<NoiseModel>
    makeNoise() const
    {
        auto pauli = [&](const char *kind) -> PauliRates {
            if (std::strcmp(kind, "x") == 0)
                return PauliRates::bitFlip(eps);
            if (std::strcmp(kind, "y") == 0)
                return PauliRates{0.0, eps, 0.0};
            if (std::strcmp(kind, "z") == 0)
                return PauliRates::phaseFlip(eps);
            return PauliRates::depolarizing(eps); // depol
        };
        if (noise.rfind("qubit-", 0) == 0)
            return std::make_unique<QubitChannelNoise>(
                pauli(noise.c_str() + 6), rounds);
        if (noise.rfind("gate-", 0) == 0)
            return std::make_unique<GateNoise>(pauli(noise.c_str() + 5),
                                               weighted);
        if (noise == "device")
            return std::make_unique<DeviceNoise>(eps, eps2);
        std::fprintf(stderr, "unknown --noise '%s'\n", noise.c_str());
        std::exit(2);
    }

    /** Canonical fingerprint: merge refuses mismatched partials. */
    std::string
    fingerprint(std::size_t shots) const
    {
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "arch=%s;m=%u;k=%u;mem-seed=%llu;noise=%s;"
                      "eps=%.17g;eps2=%.17g;rounds=%u;weighted=%d;"
                      "input=uniform;shots=%zu",
                      arch.c_str(), m, k,
                      static_cast<unsigned long long>(memSeed),
                      noise.c_str(), eps, eps2, rounds,
                      weighted ? 1 : 0, shots);
        return buf;
    }
};

bool
readFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    char buf[1 << 16];
    std::size_t nr;
    out.clear();
    while ((nr = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, nr);
    const bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

bool
writeOutput(const std::string &path, const std::string &content)
{
    if (path.empty() || path == "-") {
        // A truncated partial must not exit 0: the job runner would
        // record success and the corruption would only surface (at
        // best) as a later merge failure.
        const bool ok =
            std::fwrite(content.data(), 1, content.size(), stdout) ==
                content.size() &&
            std::fflush(stdout) == 0;
        if (!ok)
            std::fprintf(stderr, "short write to stdout\n");
        return ok;
    }
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    const bool ok =
        std::fwrite(content.data(), 1, content.size(), f) ==
        content.size();
    return std::fclose(f) == 0 && ok;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: qramsim_shard run [workload flags] --shots S "
        "--seed S --shard I/N [--out FILE]\n"
        "       qramsim_shard merge [--out FILE] partial.json ...\n"
        "see the file header of tools/qramsim_shard.cc for the "
        "workload flags\n");
    return 2;
}

int
cmdRun(int argc, char **argv)
{
    Workload w;
    std::size_t shots = 1024;
    std::uint64_t seed = 2023;
    std::size_t shardIdx = 0, shardCount = 1;
    std::vector<double> factors;
    ShotStream stream = ShotStream::Counter;
    unsigned threads = 1;
    int pipeline = -1; // -1 = estimator default / QRAMSIM_PIPELINE
    bool adaptive = false;
    AdaptivePolicy pol;
    std::string out, engine, tier;

    constexpr unsigned long kNoCap =
        std::numeric_limits<unsigned long>::max();
    for (int i = 0; i < argc; ++i) {
        const std::string flag = argv[i];
        // Strict value parsing (common/env.hh): a malformed number is
        // a hard error, never a silently truncated zero.
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s wants a value\n",
                             flag.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        auto uintVal = [&](unsigned long cap,
                           unsigned long &dst) -> bool {
            const char *v = value();
            if (!v)
                return false;
            if (!env::parseUnsigned(v, cap, dst)) {
                std::fprintf(stderr,
                             "malformed value '%s' for %s (want an "
                             "unsigned integer <= %lu)\n",
                             v, flag.c_str(), cap);
                return false;
            }
            return true;
        };
        auto doubleVal = [&](double &dst) -> bool {
            const char *v = value();
            if (!v)
                return false;
            if (!env::parseDouble(v, dst)) {
                std::fprintf(stderr,
                             "malformed value '%s' for %s (want a "
                             "finite number)\n",
                             v, flag.c_str());
                return false;
            }
            return true;
        };
        unsigned long u = 0;
        if (flag == "--arch") {
            const char *v = value();
            if (!v)
                return usage();
            w.arch = v;
        } else if (flag == "--m") {
            if (!uintVal(64, u))
                return usage();
            w.m = static_cast<unsigned>(u);
        } else if (flag == "--k") {
            if (!uintVal(64, u))
                return usage();
            w.k = static_cast<unsigned>(u);
        } else if (flag == "--mem-seed") {
            if (!uintVal(kNoCap, u))
                return usage();
            w.memSeed = u;
        } else if (flag == "--noise") {
            const char *v = value();
            if (!v)
                return usage();
            w.noise = v;
        } else if (flag == "--eps") {
            if (!doubleVal(w.eps))
                return usage();
        } else if (flag == "--eps2") {
            if (!doubleVal(w.eps2))
                return usage();
        } else if (flag == "--rounds") {
            if (!uintVal(1ul << 30, u))
                return usage();
            w.rounds = static_cast<unsigned>(u);
        } else if (flag == "--unweighted") {
            w.weighted = false;
        } else if (flag == "--shots") {
            if (!uintVal(kNoCap, u))
                return usage();
            shots = u;
        } else if (flag == "--seed") {
            if (!uintVal(kNoCap, u))
                return usage();
            seed = u;
        } else if (flag == "--factors") {
            const char *v = value();
            if (!v)
                return usage();
            factors.clear();
            for (const char *p = v; *p;) {
                char *end = nullptr;
                const double f = std::strtod(p, &end);
                if (end == p || (*end != '\0' && *end != ',')) {
                    std::fprintf(stderr,
                                 "malformed --factors '%s'\n", v);
                    return usage();
                }
                factors.push_back(f);
                p = *end == ',' ? end + 1 : end;
            }
        } else if (flag == "--shard") {
            const char *v = value();
            if (!v)
                return usage();
            const char *slash = std::strchr(v, '/');
            unsigned long idx = 0, cnt = 0;
            if (!slash ||
                !env::parseUnsigned(
                    std::string(v, slash).c_str(), kNoCap, idx) ||
                !env::parseUnsigned(slash + 1, kNoCap, cnt)) {
                std::fprintf(stderr, "--shard wants I/N, got '%s'\n",
                             v);
                return usage();
            }
            shardIdx = idx;
            shardCount = cnt;
        } else if (flag == "--stream") {
            const char *v = value();
            if (!v || !parseShotStream(v, stream)) {
                std::fprintf(stderr, "unknown --stream '%s'\n",
                             v ? v : "");
                return usage();
            }
        } else if (flag == "--threads") {
            if (!uintVal(1ul << 16, u))
                return usage();
            threads = static_cast<unsigned>(u);
        } else if (flag == "--pipeline") {
            const char *v = value();
            if (v && std::strcmp(v, "on") == 0)
                pipeline = 1;
            else if (v && std::strcmp(v, "off") == 0)
                pipeline = 0;
            else {
                std::fprintf(stderr,
                             "--pipeline wants on|off, got '%s'\n",
                             v ? v : "");
                return usage();
            }
        } else if (flag == "--engine") {
            const char *v = value();
            if (!v)
                return usage();
            engine = v;
        } else if (flag == "--tier") {
            const char *v = value();
            if (!v)
                return usage();
            tier = v;
        } else if (flag == "--out") {
            const char *v = value();
            if (!v)
                return usage();
            out = v;
        } else if (flag == "--adaptive") {
            adaptive = true;
        } else if (flag == "--target-ci") {
            if (!doubleVal(pol.targetHalfWidth))
                return usage();
        } else if (flag == "--confidence") {
            if (!doubleVal(pol.confidence))
                return usage();
            if (!(pol.confidence > 0.0 && pol.confidence < 1.0)) {
                std::fprintf(stderr,
                             "--confidence wants a value in (0, 1)\n");
                return usage();
            }
        } else if (flag == "--min-shots") {
            if (!uintVal(kNoCap, u))
                return usage();
            pol.minShots = u;
        } else if (flag == "--max-shots") {
            if (!uintVal(kNoCap, u))
                return usage();
            pol.maxShots = u;
        } else if (flag == "--batch") {
            if (!uintVal(1ul << 24, u))
                return usage();
            pol.batch = std::max<std::size_t>(1, u);
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return usage();
        }
    }
    if (shardCount == 0 || shardIdx >= shardCount) {
        std::fprintf(stderr, "--shard index out of range\n");
        return 2;
    }
    if (adaptive && stream == ShotStream::Sequential) {
        std::fprintf(stderr,
                     "--adaptive requires the counter stream "
                     "(keep decisions would desynchronize a shared "
                     "sequential draw sequence)\n");
        return 2;
    }

    SweepPlan plan =
        SweepPlan::partition(shots, shardCount, seed, factors, stream);
    if (shardIdx >= plan.shards.size()) {
        // More shards requested than shots: this shard is empty.
        // Emit a valid zero-shot partial so the merge side never has
        // to special-case job runners with fixed worker counts.
        ShardSpec empty = plan.shards.front();
        empty.shotBegin = empty.shotEnd = shots;
        plan.shards.push_back(empty);
        shardIdx = plan.shards.size() - 1;
    }
    ShardSpec spec = plan.shards[shardIdx];
    spec.threads = threads;
    if (adaptive) {
        spec.mode = EstimateMode::Adaptive;
        spec.policy = pol;
    }
    if (engine == "ensemble")
        spec.replay = ReplayPin::Ensemble;
    else if (engine == "slots" || engine == "ensemble-slots")
        spec.replay = ReplayPin::Slots;
    else if (engine == "scalar")
        spec.replay = ReplayPin::Scalar;
    else if (!engine.empty()) {
        std::fprintf(stderr, "unknown --engine '%s'\n",
                     engine.c_str());
        return 2;
    }
    spec.simdTier = tier;

    QueryCircuit qc = w.build();
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(
                              w.addressWidth()));
    applyShardPins(est, spec);
    if (pipeline >= 0)
        est.setPipeline(pipeline != 0);
    std::unique_ptr<NoiseModel> noise = w.makeNoise();

    PartialEstimate part = est.runShard(*noise, spec);
    part.workload = w.fingerprint(shots);
    return writeOutput(out, part.toJson()) ? 0 : 1;
}

int
cmdMerge(int argc, char **argv)
{
    std::string out;
    std::vector<std::string> files;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--out wants a value\n");
                return usage();
            }
            out = argv[++i];
        } else if (std::strncmp(argv[i], "--", 2) == 0) {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return usage();
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.empty())
        return usage();

    std::vector<PartialEstimate> parts;
    parts.reserve(files.size());
    for (const std::string &path : files) {
        std::string json, err;
        if (!readFile(path, json)) {
            std::fprintf(stderr, "cannot read %s\n", path.c_str());
            return 1;
        }
        PartialEstimate p;
        if (!PartialEstimate::fromJson(json, p, &err)) {
            std::fprintf(stderr, "%s: %s\n", path.c_str(),
                         err.c_str());
            return 1;
        }
        parts.push_back(std::move(p));
    }
    PartialEstimate merged;
    std::string err;
    if (!mergePartials(std::move(parts), merged, &err)) {
        std::fprintf(stderr, "merge failed: %s\n", err.c_str());
        return 1;
    }
    return writeOutput(out, merged.resultJson()) ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "run") == 0)
        return cmdRun(argc - 2, argv + 2);
    if (std::strcmp(argv[1], "merge") == 0)
        return cmdMerge(argc - 2, argv + 2);
    return usage();
}
