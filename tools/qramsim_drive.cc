/**
 * @file
 * Fault-tolerant sweep driver: run a whole sharded estimation job
 * end-to-end under the supervision of sim/orchestrator.hh — the CLI
 * face of checkpoint/resume, bounded retries with backoff, hard
 * deadlines, and straggler re-dispatch.
 *
 *   qramsim_drive [orchestration flags] [workload flags]
 *
 * Workload flags are exactly `qramsim_shard run`'s (minus --shard and
 * --out, which the driver owns) and are forwarded verbatim to the
 * worker subprocesses; the driver parses them too (tools/workload.hh,
 * the same parser the worker uses) to learn the plan geometry it is
 * partitioning. Orchestration flags:
 *
 *   --job DIR         job directory: manifest, checkpoints, result,
 *                     report, per-attempt logs (required)
 *   --resume          trust valid checkpoints already in DIR and
 *                     recompute only the missing shards
 *   --shards N        partition the shot budget N ways (default 4)
 *   --workers W       concurrent worker subprocesses (default 2)
 *   --worker-bin P    the qramsim_shard binary (default: the
 *                     QRAMSIM_SHARD environment variable)
 *   --in-process      run shards on this process's estimator instead
 *                     of subprocesses (no deadlines/speculation — a
 *                     library call cannot be killed)
 *   --server PATH     dispatch shards to a resident qramsim_server
 *                     listening on the Unix socket PATH instead of
 *                     forking workers; the full retry/deadline/
 *                     straggler contract still applies, and any
 *                     transport failure degrades the rest of the run
 *                     to fork/exec (so --worker-bin/QRAMSIM_SHARD is
 *                     still required). Ignored with a warning when
 *                     the workload pins --tier (a server rejects
 *                     process-global pins).
 *   --broker PATH     submit the job to a qramsim_broker on the Unix
 *                     socket PATH and stream finished shards into
 *                     the job directory as checkpoints; whatever the
 *                     broker does not deliver (it dies, stalls, or
 *                     parks) is recomputed through the normal
 *                     --server / fork-exec ladder, so the result is
 *                     byte-identical either way. A dead drive can
 *                     rerun the same command line: the matching
 *                     workload fingerprint resumes the parked job.
 *   --broker-stall S  give up on the broker when no new result has
 *                     arrived for S seconds (default 60)
 *   --max-attempts N  dispatch attempts per shard (default 3)
 *   --backoff-base MS exponential-backoff base delay (default 200)
 *   --deadline SEC    per-attempt hard deadline; overdue workers are
 *                     SIGKILLed and retried (0 = off)
 *   --straggler F     speculatively duplicate an attempt running
 *                     longer than F x the median completed duration
 *                     (0 = off)
 *   --straggler-min N completed shards needed before the median is
 *                     trusted (default 3)
 *   --wait-duplicates keep the job alive until duplicate attempts
 *                     finish, so each speculation ends in a
 *                     byte-for-byte cross-check
 *   --out FILE        also write the merged result JSON here
 *                     ("-" = stdout)
 *
 * Exit codes (same contract as qramsim_shard, see ToolExit):
 *   0  complete — every shard checkpointed and merged; result.json is
 *      byte-identical to a fault-free single-process run
 *   1  degraded — some shards failed permanently; their indices are
 *      in report.json, completed checkpoints survive, and a later
 *      --resume continues from them
 *   2  usage
 *   3  fatal setup error (job dir, resume mismatch, ...)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>

#include "common/atomicfile.hh"
#include "common/json.hh"
#include "common/threadpool.hh"
#include "sim/broker.hh"
#include "sim/orchestrator.hh"
#include "workload.hh"

using namespace qramsim;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: qramsim_drive --job DIR [--resume] [--shards N] "
        "[--workers W]\n"
        "         [--worker-bin P | --in-process] [--server PATH] "
        "[--broker PATH] [--broker-stall S]\n"
        "         [--max-attempts N] [--backoff-base MS]\n"
        "         [--deadline SEC] [--straggler F] "
        "[--straggler-min N] [--wait-duplicates]\n"
        "         [--out FILE] [workload flags of qramsim_shard "
        "run]\n"
        "see the file header of tools/qramsim_drive.cc\n");
    return kToolExitUsage;
}

bool
makeDirs(const std::string &path)
{
    std::string prefix;
    for (std::size_t i = 0; i <= path.size(); ++i) {
        if (i < path.size() && path[i] != '/') {
            prefix += path[i];
            continue;
        }
        if (!prefix.empty() &&
            ::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
            return false;
        if (i < path.size())
            prefix += '/';
    }
    return true;
}

/**
 * The broker phase: submit the job, stream finished shards into the
 * job directory as checkpoints, and bail out (latching a transport
 * failure in @p cfg) the moment the broker misbehaves — the
 * orchestrator behind it recomputes whatever is missing, so the
 * broker can only ever make the run cheaper, never wrong.
 */
void
runBrokerPhase(OrchestratorConfig &cfg, const tool::RunOptions &opt,
               const std::string &brokerPath, double stallSec)
{
    // Workload fingerprint = job identity: a reconnecting drive with
    // the same command line resumes its parked job, a different
    // workload can never collide into it (the broker re-checks the
    // full fingerprint string, not just its hash).
    std::string fp = opt.w.fingerprint(opt.shots);
    fp += "|seed=" + std::to_string(opt.seed);
    fp += "|stream=" +
          std::to_string(static_cast<int>(opt.stream));
    fp += "|shards=" + std::to_string(cfg.requestedShards);
    fp += "|factors=";
    json::appendDoubleArray(fp, opt.factors);

    auto transportFail = [&](const std::string &why) {
        ++cfg.brokerTransportFailures;
        std::fprintf(stderr,
                     "warning: broker %s unavailable (%s); "
                     "falling back to direct dispatch\n",
                     brokerPath.c_str(), why.c_str());
    };

    brk::Msg sub;
    sub.type = "submit";
    sub.fingerprint = fp;
    sub.nshards = cfg.requestedShards;
    sub.args = cfg.workloadArgs;
    brk::Msg jobResp;
    std::string err;
    if (!brk::roundTrip(brokerPath, sub, jobResp, &err)) {
        transportFail(err);
        return;
    }
    if (jobResp.type != "job") {
        std::fprintf(stderr,
                     "warning: broker rejected the job (%s); "
                     "falling back to direct dispatch\n",
                     jobResp.error.c_str());
        ++cfg.brokerTransportFailures;
        return;
    }
    if (jobResp.total != cfg.plan.shards.size()) {
        // The broker planned different geometry than this drive —
        // its results would not be this job's checkpoints.
        std::fprintf(stderr,
                     "warning: broker planned %llu shards, drive "
                     "planned %zu; falling back\n",
                     static_cast<unsigned long long>(jobResp.total),
                     cfg.plan.shards.size());
        ++cfg.brokerTransportFailures;
        return;
    }
    if (jobResp.resumed)
        std::fprintf(stderr,
                     "qramsim_drive: broker resumed job %s\n",
                     jobResp.job.c_str());
    if (!makeDirs(cfg.jobDir)) {
        std::fprintf(stderr,
                     "warning: cannot create %s for broker "
                     "checkpoints\n",
                     cfg.jobDir.c_str());
        return;
    }

    std::vector<bool> fetched(cfg.plan.shards.size(), false);
    auto lastProgress = std::chrono::steady_clock::now();
    for (;;) {
        brk::Msg poll, st;
        poll.type = "poll";
        poll.job = jobResp.job;
        if (!brk::roundTrip(brokerPath, poll, st, &err) ||
            st.type != "status") {
            transportFail(st.type.empty() ? err : st.error);
            break;
        }
        bool progress = false, transportDown = false;
        for (double d : st.done) {
            const std::size_t idx = static_cast<std::size_t>(d);
            if (idx >= fetched.size() || fetched[idx])
                continue;
            brk::Msg get, res;
            get.type = "fetch";
            get.job = jobResp.job;
            get.shard = idx;
            if (!brk::roundTrip(brokerPath, get, res, &err)) {
                transportFail(err);
                transportDown = true;
                break;
            }
            if (res.type != "result")
                continue; // raced a re-dispatch; next poll retries
            std::string werr;
            if (atomicWriteFile(
                    Orchestrator::checkpointPath(cfg.jobDir, idx),
                    res.payload, &werr)) {
                fetched[idx] = true;
                ++cfg.brokerShards;
                progress = true;
            } else {
                std::fprintf(stderr, "warning: %s\n", werr.c_str());
            }
        }
        if (transportDown)
            break;
        const auto now = std::chrono::steady_clock::now();
        if (progress)
            lastProgress = now;
        if (st.complete)
            break;
        if (st.jobFailed) {
            std::fprintf(stderr,
                         "warning: broker settled the job with "
                         "failed shards; recomputing them "
                         "directly\n");
            break;
        }
        if (std::chrono::duration<double>(now - lastProgress)
                .count() > stallSec) {
            std::fprintf(stderr,
                         "warning: no broker result for %.0f s; "
                         "recomputing the remainder directly\n",
                         stallSec);
            break;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(50));
    }
    // Whatever landed is a checkpoint; resume makes the orchestrator
    // trust (re-validate) it and compute only the remainder.
    cfg.resume = true;
}

} // namespace

int
main(int argc, char **argv)
{
    OrchestratorConfig cfg;
    cfg.requestedShards = 4;
    std::string outPath, brokerPath;
    double brokerStallSec = 60.0;
    bool inProcess = false;
    std::vector<char *> workloadArgv;

    constexpr unsigned long kNoCap = ~0ul;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s wants a value\n",
                             flag.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        auto uintVal = [&](unsigned long cap,
                           unsigned long &dst) -> bool {
            const char *v = value();
            if (!v || !env::parseUnsigned(v, cap, dst)) {
                std::fprintf(stderr,
                             "malformed value for %s (want an "
                             "unsigned integer)\n",
                             flag.c_str());
                return false;
            }
            return true;
        };
        auto doubleVal = [&](double &dst) -> bool {
            const char *v = value();
            if (!v || !env::parseDouble(v, dst) || dst < 0.0) {
                std::fprintf(stderr,
                             "malformed value for %s (want a "
                             "nonnegative number)\n",
                             flag.c_str());
                return false;
            }
            return true;
        };
        unsigned long u = 0;
        if (flag == "--job") {
            const char *v = value();
            if (!v)
                return usage();
            cfg.jobDir = v;
        } else if (flag == "--resume") {
            cfg.resume = true;
        } else if (flag == "--shards") {
            if (!uintVal(1ul << 20, u) || u == 0)
                return usage();
            cfg.requestedShards = u;
        } else if (flag == "--workers") {
            if (!uintVal(1ul << 12, u) || u == 0)
                return usage();
            cfg.workers = static_cast<unsigned>(u);
        } else if (flag == "--worker-bin") {
            const char *v = value();
            if (!v)
                return usage();
            cfg.workerBin = v;
        } else if (flag == "--in-process") {
            inProcess = true;
        } else if (flag == "--server") {
            const char *v = value();
            if (!v)
                return usage();
            cfg.serverPath = v;
        } else if (flag == "--broker") {
            const char *v = value();
            if (!v)
                return usage();
            brokerPath = v;
        } else if (flag == "--broker-stall") {
            if (!doubleVal(brokerStallSec) || brokerStallSec <= 0.0)
                return usage();
        } else if (flag == "--max-attempts") {
            if (!uintVal(1000, u) || u == 0)
                return usage();
            cfg.retry.maxAttempts = static_cast<unsigned>(u);
        } else if (flag == "--backoff-base") {
            if (!doubleVal(cfg.retry.backoffBaseMs))
                return usage();
        } else if (flag == "--deadline") {
            if (!doubleVal(cfg.retry.shardDeadlineSec))
                return usage();
        } else if (flag == "--straggler") {
            if (!doubleVal(cfg.retry.stragglerFactor))
                return usage();
        } else if (flag == "--straggler-min") {
            if (!uintVal(kNoCap, u))
                return usage();
            cfg.retry.stragglerMinDone = u;
        } else if (flag == "--wait-duplicates") {
            cfg.retry.waitForDuplicates = true;
        } else if (flag == "--out") {
            const char *v = value();
            if (!v)
                return usage();
            outPath = v;
        } else if (flag == "--shard" || flag == "--out-worker") {
            std::fprintf(stderr,
                         "%s is owned by the driver and cannot be "
                         "forwarded\n",
                         flag.c_str());
            return usage();
        } else {
            // Everything else is workload vocabulary, forwarded
            // verbatim to the workers (and parsed below to learn the
            // plan geometry).
            workloadArgv.push_back(argv[i]);
            continue;
        }
    }
    if (cfg.jobDir.empty()) {
        std::fprintf(stderr, "--job is required\n");
        return usage();
    }
    if (!inProcess && cfg.workerBin.empty()) {
        const char *envBin = std::getenv("QRAMSIM_SHARD");
        if (envBin && *envBin)
            cfg.workerBin = envBin;
        else {
            std::fprintf(stderr,
                         "no worker binary: pass --worker-bin, set "
                         "QRAMSIM_SHARD, or use --in-process\n");
            return usage();
        }
    }
    if (inProcess)
        cfg.workerBin.clear();

    // Parse the forwarded workload flags with the worker's own parser
    // — a flag the worker would reject must fail here, before any
    // subprocess is spawned (and --shard/--out were screened above).
    tool::RunOptions opt;
    if (!tool::parseRunFlags(static_cast<int>(workloadArgv.size()),
                             workloadArgv.data(), opt))
        return usage();
    cfg.workloadArgs.assign(workloadArgv.begin(), workloadArgv.end());
    cfg.plan = SweepPlan::partition(opt.shots, cfg.requestedShards,
                                    opt.seed, opt.factors, opt.stream);

    if (!cfg.serverPath.empty() && inProcess) {
        std::fprintf(stderr,
                     "warning: --server is a subprocess-mode "
                     "transport; ignored with --in-process\n");
        cfg.serverPath.clear();
    }
    if (!cfg.serverPath.empty() && !opt.tier.empty()) {
        // The server rejects --tier (a process-global SIMD pin a
        // shared process must not toggle); forcing it through would
        // just burn one transport round-trip per shard before the
        // inevitable fallback. Results are tier-invariant, but the
        // user asked for the pin, so honor it via fork/exec.
        std::fprintf(stderr,
                     "warning: --tier pins are per-process; "
                     "ignoring --server and using fork/exec\n");
        cfg.serverPath.clear();
    }
    if (!brokerPath.empty() && inProcess) {
        std::fprintf(stderr,
                     "warning: --broker is a subprocess-mode "
                     "transport; ignored with --in-process\n");
        brokerPath.clear();
    }
    if (!brokerPath.empty() && !opt.tier.empty()) {
        // Broker workers are resident servers and refuse --tier for
        // the same reason --server does.
        std::fprintf(stderr,
                     "warning: --tier pins are per-process; "
                     "ignoring --broker and using fork/exec\n");
        brokerPath.clear();
    }

    // The broker phase runs FIRST: finished shards stream in as
    // checkpoints, and everything else (a dead broker included)
    // falls through to the orchestrator's server/fork-exec ladder.
    if (!brokerPath.empty())
        runBrokerPhase(cfg, opt, brokerPath, brokerStallSec);

    // In-process mode: one estimator serves every shard on this
    // thread, and — so concurrent shards don't each spin up their
    // own workers — ONE ThreadPool is shared across all shards via
    // ShardSpec::pool.
    QueryCircuit qc;
    std::unique_ptr<FidelityEstimator> est;
    std::unique_ptr<NoiseModel> noise;
    std::unique_ptr<ThreadPool> pool;
    if (inProcess) {
        qc = opt.w.build();
        est = std::make_unique<FidelityEstimator>(
            qc.circuit, qc.addressQubits, qc.busQubit,
            AddressSuperposition::uniform(opt.w.addressWidth()));
        ShardSpec pinSpec = cfg.plan.shards.front();
        if (!tool::finishSpec(opt, pinSpec))
            return usage();
        applyShardPins(*est, pinSpec);
        if (opt.pipeline >= 0)
            est->setPipeline(opt.pipeline != 0);
        noise = opt.w.makeNoise();
        pool = std::make_unique<ThreadPool>(
            resolveThreads(opt.threads));
        cfg.inlineRunner = [&opt, &est, &noise,
                            &pool](const ShardSpec &planned) {
            ShardSpec spec = planned;
            tool::finishSpec(opt, spec); // validated above
            spec.pool = pool.get();
            PartialEstimate part = est->runShard(*noise, spec);
            part.workload = opt.w.fingerprint(opt.shots);
            return part;
        };
    }

    Orchestrator orch(std::move(cfg));
    const DriveReport report = orch.run();

    if (!report.error.empty()) {
        std::fprintf(stderr, "qramsim_drive: %s\n",
                     report.error.c_str());
        return kToolExitIo;
    }
    std::fprintf(stderr,
                 "qramsim_drive: %s — %zu launched, %zu retries, "
                 "%zu timeouts, %zu speculative (%zu byte-matched, "
                 "%zu mismatched), %zu resumed, %zu brokered\n",
                 report.complete ? "complete" : "DEGRADED",
                 report.launched, report.retries, report.timeouts,
                 report.speculativeLaunches, report.duplicateMatches,
                 report.duplicateMismatches, report.resumedShards,
                 report.brokerShards);
    for (std::size_t shard : report.missing)
        std::fprintf(stderr, "qramsim_drive: shard %zu missing: %s\n",
                     shard,
                     report.shards[shard].lastError.c_str());
    if (report.complete && !outPath.empty()) {
        if (outPath == "-") {
            if (std::fwrite(report.resultJson.data(), 1,
                            report.resultJson.size(), stdout) !=
                    report.resultJson.size() ||
                std::fflush(stdout) != 0)
                return kToolExitIo;
        } else {
            std::string err;
            if (!atomicWriteFile(outPath, report.resultJson, &err)) {
                std::fprintf(stderr, "%s\n", err.c_str());
                return kToolExitIo;
            }
        }
    }
    return report.complete ? 0 : 1;
}
