/**
 * @file
 * The work-stealing shard broker CLI.
 *
 *     qramsim_broker --socket PATH [--state DIR] [--resume]
 *                    [--stats-out FILE] [--heartbeat SEC]
 *                    [--dead SEC] [--lease SEC] [--straggler X]
 *                    [--straggler-min N] [--max-attempts N]
 *                    [--park SEC] [--rotate BYTES]
 *
 * Owns one global shard queue across jobs: drives submit
 * (`qramsim_drive --broker PATH`), workers pull
 * (`qramsim_server --broker PATH`), and the broker leases,
 * re-dispatches stalled shards, cross-checks stolen duplicates, and
 * journals every accepted transition under --state so a SIGKILLed
 * broker restarted with --resume finishes every in-flight job
 * byte-identically. Protocol and recovery contract: src/sim/broker.hh.
 *
 * Prints "brokering on PATH" once ready, serves until SIGINT/SIGTERM,
 * writes the stats JSON to --stats-out (atomic rename) on a clean
 * drain, exits 0. Exit 2 on bad flags, 1 when the socket cannot be
 * bound or the journal will not replay (tampered, or present without
 * --resume).
 */

#include <csignal>
#include <cstdio>
#include <string>

#include "common/atomicfile.hh"
#include "common/env.hh"
#include "sim/broker.hh"

using namespace qramsim;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: qramsim_broker --socket PATH [--state DIR] "
        "[--resume]\n"
        "                      [--stats-out FILE] [--heartbeat SEC]\n"
        "                      [--dead SEC] [--lease SEC]\n"
        "                      [--straggler X] [--straggler-min N]\n"
        "                      [--max-attempts N] [--park SEC]\n"
        "                      [--rotate BYTES]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    brk::BrokerConfig cfg;
    std::string statsOut;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s wants a value\n",
                             flag.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        auto uintVal = [&](unsigned long cap,
                           unsigned long &dst) -> bool {
            const char *v = value();
            if (!v)
                return false;
            if (!env::parseUnsigned(v, cap, dst)) {
                std::fprintf(stderr,
                             "malformed value '%s' for %s\n", v,
                             flag.c_str());
                return false;
            }
            return true;
        };
        auto doubleVal = [&](double &dst) -> bool {
            const char *v = value();
            if (!v)
                return false;
            double d = 0.0;
            if (!env::parseDouble(v, d) || d < 0.0) {
                std::fprintf(stderr,
                             "malformed value '%s' for %s\n", v,
                             flag.c_str());
                return false;
            }
            dst = d;
            return true;
        };
        unsigned long u = 0;
        if (flag == "--socket") {
            const char *v = value();
            if (!v)
                return usage();
            cfg.socketPath = v;
        } else if (flag == "--state") {
            const char *v = value();
            if (!v)
                return usage();
            cfg.stateDir = v;
        } else if (flag == "--resume") {
            cfg.resume = true;
        } else if (flag == "--stats-out") {
            const char *v = value();
            if (!v)
                return usage();
            statsOut = v;
        } else if (flag == "--heartbeat") {
            if (!doubleVal(cfg.heartbeatSec))
                return usage();
        } else if (flag == "--dead") {
            if (!doubleVal(cfg.workerDeadSec))
                return usage();
        } else if (flag == "--lease") {
            if (!doubleVal(cfg.leaseBaseSec))
                return usage();
        } else if (flag == "--straggler") {
            if (!doubleVal(cfg.stragglerFactor))
                return usage();
        } else if (flag == "--straggler-min") {
            if (!uintVal(1ul << 20, u))
                return usage();
            cfg.stragglerMinDone = u;
        } else if (flag == "--max-attempts") {
            if (!uintVal(1000, u) || u == 0)
                return usage();
            cfg.maxAttempts = static_cast<unsigned>(u);
        } else if (flag == "--park") {
            if (!doubleVal(cfg.parkAfterSec))
                return usage();
        } else if (flag == "--rotate") {
            if (!uintVal(1ul << 32, u) || u == 0)
                return usage();
            cfg.rotateBytes = u;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return usage();
        }
    }
    if (cfg.socketPath.empty()) {
        std::fprintf(stderr, "--socket is required\n");
        return usage();
    }
    if (cfg.heartbeatSec <= 0.0) {
        std::fprintf(stderr, "--heartbeat must be positive\n");
        return usage();
    }

    // Mask SIGINT/SIGTERM before the broker spawns its threads so
    // sigwait below owns delivery (same pattern as qramsim_server).
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);

    brk::Broker broker(cfg);
    std::string err;
    if (!broker.start(&err)) {
        std::fprintf(stderr, "cannot start broker: %s\n",
                     err.c_str());
        return 1;
    }
    std::printf("brokering on %s\n", cfg.socketPath.c_str());
    std::fflush(stdout);

    int sig = 0;
    sigwait(&set, &sig);

    broker.stop();
    const std::string statsJson = broker.statsJson();
    if (!statsOut.empty() &&
        !atomicWriteFile(statsOut, statsJson, &err))
        std::fprintf(stderr, "cannot write %s: %s\n",
                     statsOut.c_str(), err.c_str());
    const brk::Broker::Stats st = broker.stats();
    std::fprintf(
        stderr,
        "brokered %llu jobs (%llu assignments, %llu steals, %llu "
        "redispatches, %llu duplicate commits, %llu mismatches)\n",
        static_cast<unsigned long long>(st.jobsSubmitted +
                                        st.jobsResumed),
        static_cast<unsigned long long>(st.assignments +
                                        st.speculativeAssignments),
        static_cast<unsigned long long>(st.steals),
        static_cast<unsigned long long>(st.redispatches),
        static_cast<unsigned long long>(st.duplicateCommits),
        static_cast<unsigned long long>(st.duplicateMismatches));
    return 0;
}
