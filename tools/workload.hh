/**
 * @file
 * The shared workload vocabulary of the sharded-estimation CLIs:
 * tools/qramsim_shard.cc (run one shard / merge partials) and
 * tools/qramsim_drive.cc (orchestrate a whole job) must agree exactly
 * on what a workload is — the same flags, the same strict parsing, the
 * same fingerprint — because the driver forwards its workload flags
 * verbatim to the workers and then merges what they produce. One
 * definition here keeps a driver/worker skew from ever becoming a
 * silently mixed merge.
 *
 * See the file header of tools/qramsim_shard.cc for the flag
 * reference.
 */

#ifndef QRAMSIM_TOOLS_WORKLOAD_HH
#define QRAMSIM_TOOLS_WORKLOAD_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/env.hh"
#include "qram/baselines.hh"
#include "qram/bucket_brigade.hh"
#include "qram/compact.hh"
#include "qram/fanout.hh"
#include "qram/select_swap.hh"
#include "qram/virtual_qram.hh"
#include "sim/fidelity.hh"
#include "sim/noise.hh"
#include "sim/sharding.hh"

namespace qramsim {
namespace tool {

struct Workload
{
    std::string arch = "bb";
    unsigned m = 3;
    unsigned k = 0;
    std::uint64_t memSeed = 7;
    std::string noise = "gate-z";
    double eps = 1e-3;
    double eps2 = 1e-3;
    unsigned rounds = 0;
    bool weighted = true;

    unsigned
    addressWidth() const
    {
        return (arch == "bb" || arch == "fanout") ? m : m + k;
    }

    QueryCircuit
    build() const
    {
        Rng rng(memSeed);
        Memory mem = Memory::random(addressWidth(), rng);
        if (arch == "bb")
            return BucketBrigadeQram(m).build(mem);
        if (arch == "fanout")
            return FanoutQram(m).build(mem);
        if (arch == "virtual")
            return VirtualQram(m, k).build(mem);
        if (arch == "sqc")
            return SqcBucketBrigade(m, k).build(mem);
        if (arch == "select-swap")
            return SelectSwapQram(m, k).build(mem);
        if (arch == "compact")
            return CompactQram(m, k).build(mem);
        std::fprintf(stderr, "unknown --arch '%s'\n", arch.c_str());
        std::exit(2); // kToolExitUsage
    }

    std::unique_ptr<NoiseModel>
    makeNoise() const
    {
        auto pauli = [&](const char *kind) -> PauliRates {
            if (std::strcmp(kind, "x") == 0)
                return PauliRates::bitFlip(eps);
            if (std::strcmp(kind, "y") == 0)
                return PauliRates{0.0, eps, 0.0};
            if (std::strcmp(kind, "z") == 0)
                return PauliRates::phaseFlip(eps);
            return PauliRates::depolarizing(eps); // depol
        };
        if (noise.rfind("qubit-", 0) == 0)
            return std::make_unique<QubitChannelNoise>(
                pauli(noise.c_str() + 6), rounds);
        if (noise.rfind("gate-", 0) == 0)
            return std::make_unique<GateNoise>(pauli(noise.c_str() + 5),
                                               weighted);
        if (noise == "device")
            return std::make_unique<DeviceNoise>(eps, eps2);
        std::fprintf(stderr, "unknown --noise '%s'\n", noise.c_str());
        std::exit(2); // kToolExitUsage
    }

    /** Canonical fingerprint: merge refuses mismatched partials. */
    std::string
    fingerprint(std::size_t shots) const
    {
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "arch=%s;m=%u;k=%u;mem-seed=%llu;noise=%s;"
                      "eps=%.17g;eps2=%.17g;rounds=%u;weighted=%d;"
                      "input=uniform;shots=%zu",
                      arch.c_str(), m, k,
                      static_cast<unsigned long long>(memSeed),
                      noise.c_str(), eps, eps2, rounds,
                      weighted ? 1 : 0, shots);
        return buf;
    }

    /**
     * Non-exiting validation of the names build()/makeNoise() would
     * otherwise reject with std::exit(2). A CLI worker may die on a
     * bad workload — a resident server must refuse the request and
     * keep serving, so it calls this BEFORE touching build().
     */
    bool
    validate(std::string *err = nullptr) const
    {
        auto fail = [&](const std::string &msg) {
            if (err)
                *err = msg;
            return false;
        };
        static const char *const kArchs[] = {
            "bb", "fanout", "virtual", "sqc", "select-swap", "compact"};
        bool knownArch = false;
        for (const char *a : kArchs)
            knownArch = knownArch || arch == a;
        if (!knownArch)
            return fail("unknown arch '" + arch + "'");
        if (m == 0)
            return fail("m must be positive");
        // Mirrors makeNoise(): any qubit-*/gate-* suffix is a Pauli
        // channel name (unrecognized suffixes mean depolarizing).
        if (noise.rfind("qubit-", 0) != 0 &&
            noise.rfind("gate-", 0) != 0 && noise != "device")
            return fail("unknown noise '" + noise + "'");
        return true;
    }
};

/** Everything `qramsim_shard run` accepts (the driver parses the
 *  same set minus --shard/--out to learn the plan geometry it
 *  forwards). */
struct RunOptions
{
    Workload w;
    std::size_t shots = 1024;
    std::uint64_t seed = 2023;
    std::size_t shardIdx = 0, shardCount = 1;
    std::vector<double> factors;
    ShotStream stream = ShotStream::Counter;
    unsigned threads = 1;
    int pipeline = -1; // -1 = estimator default / QRAMSIM_PIPELINE
    bool adaptive = false;
    AdaptivePolicy pol;
    std::string out, engine, tier;
};

/**
 * Parse `run` flags into @p opt. Strict (common/env.hh): a malformed
 * value prints a diagnostic and returns false — the caller exits with
 * the usage code. Also enforces the cross-flag invariants (shard index
 * in range, adaptive requires the counter stream).
 */
inline bool
parseRunFlags(int argc, char **argv, RunOptions &opt)
{
    constexpr unsigned long kNoCap =
        std::numeric_limits<unsigned long>::max();
    for (int i = 0; i < argc; ++i) {
        const std::string flag = argv[i];
        // Strict value parsing (common/env.hh): a malformed number is
        // a hard error, never a silently truncated zero.
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s wants a value\n",
                             flag.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        auto uintVal = [&](unsigned long cap,
                           unsigned long &dst) -> bool {
            const char *v = value();
            if (!v)
                return false;
            if (!env::parseUnsigned(v, cap, dst)) {
                std::fprintf(stderr,
                             "malformed value '%s' for %s (want an "
                             "unsigned integer <= %lu)\n",
                             v, flag.c_str(), cap);
                return false;
            }
            return true;
        };
        auto doubleVal = [&](double &dst) -> bool {
            const char *v = value();
            if (!v)
                return false;
            if (!env::parseDouble(v, dst)) {
                std::fprintf(stderr,
                             "malformed value '%s' for %s (want a "
                             "finite number)\n",
                             v, flag.c_str());
                return false;
            }
            return true;
        };
        unsigned long u = 0;
        if (flag == "--arch") {
            const char *v = value();
            if (!v)
                return false;
            opt.w.arch = v;
        } else if (flag == "--m") {
            if (!uintVal(64, u))
                return false;
            opt.w.m = static_cast<unsigned>(u);
        } else if (flag == "--k") {
            if (!uintVal(64, u))
                return false;
            opt.w.k = static_cast<unsigned>(u);
        } else if (flag == "--mem-seed") {
            if (!uintVal(kNoCap, u))
                return false;
            opt.w.memSeed = u;
        } else if (flag == "--noise") {
            const char *v = value();
            if (!v)
                return false;
            opt.w.noise = v;
        } else if (flag == "--eps") {
            if (!doubleVal(opt.w.eps))
                return false;
        } else if (flag == "--eps2") {
            if (!doubleVal(opt.w.eps2))
                return false;
        } else if (flag == "--rounds") {
            if (!uintVal(1ul << 30, u))
                return false;
            opt.w.rounds = static_cast<unsigned>(u);
        } else if (flag == "--unweighted") {
            opt.w.weighted = false;
        } else if (flag == "--shots") {
            if (!uintVal(kNoCap, u))
                return false;
            opt.shots = u;
        } else if (flag == "--seed") {
            if (!uintVal(kNoCap, u))
                return false;
            opt.seed = u;
        } else if (flag == "--factors") {
            const char *v = value();
            if (!v)
                return false;
            opt.factors.clear();
            for (const char *p = v; *p;) {
                char *end = nullptr;
                const double f = std::strtod(p, &end);
                if (end == p || (*end != '\0' && *end != ',')) {
                    std::fprintf(stderr,
                                 "malformed --factors '%s'\n", v);
                    return false;
                }
                opt.factors.push_back(f);
                p = *end == ',' ? end + 1 : end;
            }
        } else if (flag == "--shard") {
            const char *v = value();
            if (!v)
                return false;
            const char *slash = std::strchr(v, '/');
            unsigned long idx = 0, cnt = 0;
            if (!slash ||
                !env::parseUnsigned(
                    std::string(v, slash).c_str(), kNoCap, idx) ||
                !env::parseUnsigned(slash + 1, kNoCap, cnt)) {
                std::fprintf(stderr, "--shard wants I/N, got '%s'\n",
                             v);
                return false;
            }
            opt.shardIdx = idx;
            opt.shardCount = cnt;
        } else if (flag == "--stream") {
            const char *v = value();
            if (!v || !parseShotStream(v, opt.stream)) {
                std::fprintf(stderr, "unknown --stream '%s'\n",
                             v ? v : "");
                return false;
            }
        } else if (flag == "--threads") {
            if (!uintVal(1ul << 16, u))
                return false;
            opt.threads = static_cast<unsigned>(u);
        } else if (flag == "--pipeline") {
            const char *v = value();
            if (v && std::strcmp(v, "on") == 0)
                opt.pipeline = 1;
            else if (v && std::strcmp(v, "off") == 0)
                opt.pipeline = 0;
            else {
                std::fprintf(stderr,
                             "--pipeline wants on|off, got '%s'\n",
                             v ? v : "");
                return false;
            }
        } else if (flag == "--engine") {
            const char *v = value();
            if (!v)
                return false;
            opt.engine = v;
        } else if (flag == "--tier") {
            const char *v = value();
            if (!v)
                return false;
            opt.tier = v;
        } else if (flag == "--out") {
            const char *v = value();
            if (!v)
                return false;
            opt.out = v;
        } else if (flag == "--adaptive") {
            opt.adaptive = true;
        } else if (flag == "--target-ci") {
            if (!doubleVal(opt.pol.targetHalfWidth))
                return false;
        } else if (flag == "--confidence") {
            if (!doubleVal(opt.pol.confidence))
                return false;
            if (!(opt.pol.confidence > 0.0 &&
                  opt.pol.confidence < 1.0)) {
                std::fprintf(stderr,
                             "--confidence wants a value in (0, 1)\n");
                return false;
            }
        } else if (flag == "--min-shots") {
            if (!uintVal(kNoCap, u))
                return false;
            opt.pol.minShots = u;
        } else if (flag == "--max-shots") {
            if (!uintVal(kNoCap, u))
                return false;
            opt.pol.maxShots = u;
        } else if (flag == "--batch") {
            if (!uintVal(1ul << 24, u))
                return false;
            opt.pol.batch = std::max<std::size_t>(1, u);
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return false;
        }
    }
    if (opt.shardCount == 0 || opt.shardIdx >= opt.shardCount) {
        std::fprintf(stderr, "--shard index out of range\n");
        return false;
    }
    if (opt.adaptive && opt.stream == ShotStream::Sequential) {
        std::fprintf(stderr,
                     "--adaptive requires the counter stream "
                     "(keep decisions would desynchronize a shared "
                     "sequential draw sequence)\n");
        return false;
    }
    return true;
}

/**
 * Apply the per-shard execution options (threads, adaptive policy,
 * engine/tier pins) to a spec cut from the plan. False (with a
 * diagnostic) on an unknown engine name.
 */
inline bool
finishSpec(const RunOptions &opt, ShardSpec &spec)
{
    spec.threads = opt.threads;
    if (opt.adaptive) {
        spec.mode = EstimateMode::Adaptive;
        spec.policy = opt.pol;
    }
    if (opt.engine == "ensemble")
        spec.replay = ReplayPin::Ensemble;
    else if (opt.engine == "slots" || opt.engine == "ensemble-slots")
        spec.replay = ReplayPin::Slots;
    else if (opt.engine == "scalar")
        spec.replay = ReplayPin::Scalar;
    else if (!opt.engine.empty()) {
        std::fprintf(stderr, "unknown --engine '%s'\n",
                     opt.engine.c_str());
        return false;
    }
    spec.simdTier = opt.tier;
    return true;
}

/**
 * Cut this request's ShardSpec from its SweepPlan exactly the way
 * `qramsim_shard run` does — including the empty-shard special case
 * when more shards are requested than there are shots — then apply
 * the per-shard execution options via finishSpec. Shared by the
 * shard CLI and the resident server so the two transports can never
 * disagree about which shots a request covers. False (diagnostic on
 * stderr and in *err) on an unknown engine name.
 */
inline bool
cutShardSpec(const RunOptions &opt, ShardSpec &spec,
             std::string *err = nullptr)
{
    SweepPlan plan = SweepPlan::partition(opt.shots, opt.shardCount,
                                          opt.seed, opt.factors,
                                          opt.stream);
    std::size_t shardIdx = opt.shardIdx;
    if (shardIdx >= plan.shards.size()) {
        // More shards requested than shots: this shard is empty.
        // Emit a valid zero-shot partial so the merge side never has
        // to special-case job runners with fixed worker counts.
        ShardSpec empty = plan.shards.front();
        empty.shotBegin = empty.shotEnd = opt.shots;
        plan.shards.push_back(empty);
        shardIdx = plan.shards.size() - 1;
    }
    spec = plan.shards[shardIdx];
    if (!finishSpec(opt, spec)) {
        if (err)
            *err = "unknown --engine '" + opt.engine + "'";
        return false;
    }
    return true;
}

/**
 * Canonical content key of one shard request's RESULT. Two requests
 * with equal keys produce byte-identical PartialEstimate JSON, so a
 * result cache may serve one computation to both.
 *
 * Built from the PARSED request, never the flag text: permuted flag
 * orderings and equivalent spellings of the same value ("2e-3" vs
 * "0.002", factor lists with the same doubles) canonicalize to the
 * same key, while every semantic knob (noise rates, seed, shot
 * range, stream, mode and the full adaptive policy — batch included,
 * it moves stopping decisions) changes it.
 *
 * Deliberately EXCLUDED: threads, pipeline, engine and SIMD-tier
 * pins, and the output path. The estimation invariants enforced by
 * the test suite make results bit-identical across all of them, so
 * keying on them would only split the cache.
 */
inline std::string
resultCacheKey(const RunOptions &opt, const ShardSpec &spec)
{
    std::string key = opt.w.fingerprint(opt.shots);
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  ";seed=%llu;stream=%s;range=%zu-%zu",
                  static_cast<unsigned long long>(opt.seed),
                  shotStreamName(spec.stream), spec.shotBegin,
                  spec.shotEnd);
    key += buf;
    key += ";factors=";
    for (std::size_t i = 0; i < spec.factors.size(); ++i) {
        std::snprintf(buf, sizeof buf, "%s%.17g", i ? "," : "",
                      spec.factors[i]);
        key += buf;
    }
    if (spec.mode == EstimateMode::Adaptive) {
        std::snprintf(buf, sizeof buf,
                      ";mode=adaptive;target-ci=%.17g;confidence=%.17g;"
                      "min-shots=%zu;max-shots=%zu;batch=%zu;"
                      "max-draws=%zu",
                      spec.policy.targetHalfWidth,
                      spec.policy.confidence, spec.policy.minShots,
                      spec.policy.maxShots, spec.policy.batch,
                      spec.policy.maxDraws);
        key += buf;
    } else {
        key += ";mode=replay";
    }
    return key;
}

inline bool
readFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    char buf[1 << 16];
    std::size_t nr;
    out.clear();
    while ((nr = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, nr);
    const bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

} // namespace tool
} // namespace qramsim

#endif // QRAMSIM_TOOLS_WORKLOAD_HH
