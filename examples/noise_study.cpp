/**
 * @file
 * Noise study: the biased-noise resilience of virtual QRAM, end to
 * end.
 *
 * Walks through the Sec. 5 story at one configuration (m = 4, k = 1):
 *
 *  1. simulate the query under pure phase-flip (Z) and pure bit-flip
 *     (X) channels at several error rates;
 *  2. compare against the analytic lower bounds (Eqs. 5/6, dual-rail
 *     constants);
 *  3. derive the rectangular surface code (Eq. 7) that balances the
 *     two axes for fault-tolerant deployment.
 *
 * Run: ./build/examples/noise_study
 */

#include <cstdio>

#include "analysis/bounds.hh"
#include "common/table.hh"
#include "ecc/surface_code.hh"
#include "qram/virtual_qram.hh"
#include "sim/fidelity.hh"

using namespace qramsim;

int
main()
{
    const unsigned m = 4, k = 1;
    Rng rng(5);
    Memory mem = Memory::random(m + k, rng);
    QueryCircuit qc = VirtualQram(m, k).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(m + k));
    const unsigned rounds = QubitChannelNoise::virtualQramRounds(m, k);

    Table t("Virtual QRAM (m=4, k=1) under biased channels",
            {"eps", "F_Z(meas)", "Eq5(dual-rail)", "F_X(meas)",
             "Eq6(dual-rail)", "Z-advantage"});
    for (double eps : {1e-5, 3e-5, 1e-4, 3e-4, 1e-3}) {
        FidelityResult fz = est.estimate(
            QubitChannelNoise(PauliRates::phaseFlip(eps), rounds), 400,
            11);
        FidelityResult fx = est.estimate(
            QubitChannelNoise(PauliRates::bitFlip(eps), rounds), 400,
            13);
        const double zAdv =
            (1.0 - fx.full) / std::max(1e-9, 1.0 - fz.full);
        t.addRow({Table::fmt(eps, 5), Table::fmt(fz.full),
                  Table::fmt(boundVirtualZDualRail(eps, m, k)),
                  Table::fmt(fx.full),
                  Table::fmt(boundVirtualXDualRail(eps, m, k)),
                  Table::fmt(zAdv, 1) + "x"});
    }
    t.print();

    std::printf("Fault-tolerant deployment (p = 1e-3, threshold "
                "1e-2):\n");
    RectangularCode code =
        chooseRectangularCode(m, k, 1e-3, 1e-2, 1e-12);
    std::printf("  Eq.7 gap dx-dz  : %.2f\n",
                balancedDistanceGap(m, k, 1e-3, 1e-2));
    std::printf("  chosen code     : dx=%u dz=%u (%lu physical/logical)"
                "\n",
                code.dx, code.dz,
                static_cast<unsigned long>(code.physicalQubits()));
    std::printf("  full QRAM cost  : %lu physical qubits\n",
                static_cast<unsigned long>(
                    virtualQramPhysicalQubits(m, k, code, code.dx)));
    std::printf("\nZ errors hurt polynomially (branch-local), X errors"
                " exponentially\n(the compression array is global), so"
                " the code spends its extra\ndistance on the X axis —"
                " exactly Eq. 7.\n");
    return 0;
}
