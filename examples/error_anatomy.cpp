/**
 * @file
 * Anatomy of an error: why virtual QRAM shrugs off Z and fears X.
 *
 * Uses the static lightcone analysis (Fig. 7's commutation argument,
 * made executable) to dissect a real query circuit: for every
 * injection point, how far can a Z or an X error spread, and can it
 * ever flip the bus? Then corroborates the static verdict with Monte
 * Carlo simulation.
 *
 * Run: ./build/examples/error_anatomy
 */

#include <cstdio>

#include "analysis/lightcone.hh"
#include "common/table.hh"
#include "qram/bucket_brigade.hh"
#include "qram/virtual_qram.hh"
#include "sim/fidelity.hh"

using namespace qramsim;

int
main()
{
    Table t("Static error reach across architectures",
            {"arch", "pauli", "mean-reach", "max-reach",
             "bus-flipping-injections", "of-total"});

    auto addRows = [&](const QueryArchitecture &arch,
                       const Memory &mem) {
        QueryCircuit qc = arch.build(mem);
        for (PauliKind p : {PauliKind::Z, PauliKind::X}) {
            LightconeStats s =
                sweepLightcones(qc.circuit, qc.busQubit, p);
            t.addRow({arch.name(), p == PauliKind::Z ? "Z" : "X",
                      Table::fmt(s.meanSize, 1), Table::fmt(s.maxSize),
                      Table::fmt(s.busFlips),
                      Table::fmt(s.injections)});
        }
    };
    Rng rng(21);
    Memory mem4 = Memory::random(4, rng);
    Memory mem4b = Memory::random(4, rng);
    addRows(VirtualQram(3, 1), mem4);
    addRows(BucketBrigadeQram(4), mem4b);
    t.print();

    std::printf("The Fig. 7 commutation rule, verified on the full "
                "circuit: NO Z injection\npoint can ever flip the bus "
                "(the error stays on its branch and dephases\nonly "
                "that branch), while thousands of X injection points "
                "reach it through\nthe CX compression array.\n\n");

    // Corroborate with simulation at one configuration.
    Memory mem = Memory::random(4, rng);
    QueryCircuit qc = VirtualQram(3, 1).build(mem);
    FidelityEstimator est(qc.circuit, qc.addressQubits, qc.busQubit,
                          AddressSuperposition::uniform(4));
    for (double eps : {1e-4, 1e-3}) {
        FidelityResult fz = est.estimate(
            GateNoise(PauliRates::phaseFlip(eps), false), 400, 3);
        FidelityResult fx = est.estimate(
            GateNoise(PauliRates::bitFlip(eps), false), 400, 4);
        std::printf("eps = %g : F_Z = %.4f   F_X = %.4f\n", eps,
                    fz.reduced, fx.reduced);
    }
    return 0;
}
