/**
 * @file
 * Virtual memory for qubits: querying an address space larger than the
 * physical QRAM.
 *
 * The core systems idea of the paper (Sec. 3.1.3): hold the physical
 * router tree at a fixed width m and grow the *virtual* address space
 * by paging classical segments through it, exactly like a small RAM
 * backed by disk. This example fixes m = 4 (16 resident cells) and
 * sweeps the SQC width k, showing
 *
 *  - qubit count stays flat while capacity multiplies by 2^k,
 *  - query depth grows linearly in the page count (the latency price),
 *  - lazy data swapping (Key Optimization 2) cuts the classical
 *    page-in traffic roughly in half on random data, and much more on
 *    correlated data (a half-empty database).
 *
 * Run: ./build/examples/virtual_paging
 */

#include <cstdio>

#include "circuit/cost_model.hh"
#include "common/table.hh"
#include "qram/virtual_qram.hh"

using namespace qramsim;

int
main()
{
    const unsigned m = 4;
    std::printf("Physical QRAM width m = %u (16 resident cells)\n\n",
                m);

    Table t("Capacity scaling at fixed physical tree",
            {"k", "virtual-cells", "qubits", "depth",
             "classical-ctrl(lazy)", "classical-ctrl(eager)",
             "lazy-saving"});
    for (unsigned k = 0; k <= 5; ++k) {
        Rng rng(17 + k);
        Memory mem = Memory::random(m + k, rng);
        VirtualQramOptions lazy;
        VirtualQramOptions eager;
        eager.lazyDataSwapping = false;
        QueryCircuit lazyQc = VirtualQram(m, k, lazy).build(mem);
        QueryCircuit eagerQc = VirtualQram(m, k, eager).build(mem);
        CircuitResources r = measureResources(lazyQc.circuit);
        const auto cl = lazyQc.circuit.countClassical();
        const auto ce = eagerQc.circuit.countClassical();
        t.addRow({Table::fmt(k), Table::fmt(std::uint64_t(mem.size())),
                  Table::fmt(r.qubits), Table::fmt(r.logicalDepth),
                  Table::fmt(cl), Table::fmt(ce),
                  Table::fmt(1.0 - double(cl) / double(ce), 3)});
    }
    t.print();

    // Correlated data: a sparse database where most pages are empty —
    // lazy swapping skips them entirely.
    Table t2("Lazy swapping on sparse data (m=4, k=4, 3% ones)",
             {"data", "classical-ctrl(lazy)", "classical-ctrl(eager)",
              "saving"});
    Rng rng(4242);
    Memory sparse(m + 4);
    for (std::uint64_t i = 0; i < sparse.size(); ++i)
        sparse.setBit(i, rng.bernoulli(0.03));
    Memory dense = Memory::random(m + 4, rng);
    auto addDataRow = [&](const char *label, const Memory &mem2) {
        VirtualQramOptions lazy;
        VirtualQramOptions eager;
        eager.lazyDataSwapping = false;
        auto cl = VirtualQram(m, 4, lazy)
                      .build(mem2)
                      .circuit.countClassical();
        auto ce = VirtualQram(m, 4, eager)
                      .build(mem2)
                      .circuit.countClassical();
        t2.addRow({label, Table::fmt(cl), Table::fmt(ce),
                   Table::fmt(1.0 - double(cl) / double(ce), 3)});
    };
    addDataRow("sparse(3%)", sparse);
    addDataRow("random(50%)", dense);
    t2.print();

    std::printf("Qubits stay at ~4*2^m + n while the virtual address\n"
                "space grows 32x; the cost is paid in sequential page\n"
                "rounds, which lazy swapping keeps cheap.\n");
    return 0;
}
