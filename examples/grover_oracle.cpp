/**
 * @file
 * Grover database search: costing the QRAM oracle.
 *
 * Grover's algorithm (the paper's motivating application, Sec. 1)
 * searches an unsorted N-cell database with ~(pi/4)*sqrt(N) oracle
 * calls, but each oracle call must load the database coherently —
 * that's a QRAM query. This example sizes the full search for a range
 * of database sizes and architectures:
 *
 *  - per-query resources (depth, T count) per architecture,
 *  - total search cost = per-query cost x (pi/4) sqrt(N),
 *  - the expected end-to-end success probability under gate noise,
 *    approximated as (query fidelity)^(number of queries) — showing
 *    why the paper's noise-resilience results decide whether quantum
 *    search survives at all [Regev & Schiff].
 *
 * Run: ./build/examples/grover_oracle
 */

#include <cmath>
#include <cstdio>

#include "circuit/cost_model.hh"
#include "common/table.hh"
#include "qram/baselines.hh"
#include "qram/virtual_qram.hh"
#include "sim/fidelity.hh"

using namespace qramsim;

int
main()
{
    std::printf("Grover search with a QRAM oracle: who can afford the "
                "queries?\n\n");

    Table t("Per-query and whole-search cost (k = 2 pages resident)",
            {"N", "arch", "qubits", "depth/query", "T/query",
             "queries", "total-T", "F/query", "P(success)"});

    for (unsigned n : {4u, 6u, 8u}) {
        const unsigned k = 2, m = n - k;
        Rng rng(41 + n);
        Memory db = Memory::random(n, rng);
        const double queries =
            std::ceil(M_PI / 4.0 * std::sqrt(double(db.size())));

        auto addRow = [&](const QueryArchitecture &arch) {
            QueryCircuit qc = arch.build(db);
            CircuitResources r = measureResources(qc.circuit);
            // Per-query fidelity at eps = 1e-4 (gate-based, flat).
            FidelityEstimator est(qc.circuit, qc.addressQubits,
                                  qc.busQubit,
                                  AddressSuperposition::uniform(n));
            GateNoise noise(PauliRates::depolarizing(1e-4), false);
            FidelityResult f = est.estimate(noise, 200, 99 + n);
            const double pSuccess =
                std::pow(f.reduced, queries);
            t.addRow({Table::fmt(std::uint64_t(db.size())),
                      arch.name(), Table::fmt(r.qubits),
                      Table::fmt(r.logicalDepth), Table::fmt(r.tCount),
                      Table::fmt(queries, 0),
                      Table::fmt(std::uint64_t(r.tCount * queries)),
                      Table::fmt(f.reduced, 3),
                      Table::fmt(pSuccess, 3)});
        };
        addRow(VirtualQram(m, k));
        addRow(SqcBucketBrigade(m, k));
    }
    t.print();

    std::printf(
        "Reading: the virtual QRAM's load-once queries keep the total\n"
        "T budget ~2^k lower than SQC+BB, and its higher per-query\n"
        "fidelity compounds over the sqrt(N) Grover iterations.\n");
    return 0;
}
