/**
 * @file
 * Layout explorer: see the H-tree embeddings and routing trade-off.
 *
 * Renders the Sec. 4.2 embeddings as ASCII (R = router site, D = data
 * site, * = routing qubit, . = unused), validates the topological-
 * minor property, and contrasts the swap-chain vs teleportation
 * routing cost per width — Fig. 6 and Fig. 8 in one tour.
 *
 * Run: ./build/examples/layout_explorer
 */

#include <cstdio>

#include "layout/htree.hh"
#include "layout/routers.hh"

using namespace qramsim;

int
main()
{
    for (unsigned m : {2u, 3u, 4u}) {
        HTreeEmbedding e = HTreeEmbedding::build(m);
        std::printf("--- T_%u embedded in %dx%d "
                    "(capacity %zu, topological minor: %s) ---\n",
                    m, e.gridWidth(), e.gridHeight(),
                    TreeIndex::leafCount(m),
                    e.validate() ? "valid" : "INVALID");
        std::printf("%s\n", e.toAscii().c_str());
    }

    std::printf("Routing a full query (6 level-crossings):\n");
    std::printf("%3s %10s %18s %22s\n", "m", "grid",
                "swap extra depth", "teleport extra depth");
    for (unsigned m = 1; m <= 10; ++m) {
        HTreeEmbedding e = HTreeEmbedding::build(m);
        RoutingCost sw = swapRoutingCost(e);
        RoutingCost tp = teleportRoutingCost(e);
        std::printf("%3u %6dx%-4d %18lu %22lu\n", m, e.gridWidth(),
                    e.gridHeight(),
                    static_cast<unsigned long>(sw.extraDepth),
                    static_cast<unsigned long>(tp.extraDepth));
    }
    std::printf("\nThe swap column doubles every two widths (root arms"
                " span ~2^(m/2) cells);\nteleportation pays a constant "
                "per level, preserving O(log M) query latency.\n");
    return 0;
}
