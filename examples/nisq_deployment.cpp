/**
 * @file
 * Deploying a small QRAM on today's hardware (Appendix A workflow).
 *
 * The full compilation pipeline for a NISQ target:
 *   1. pick the compact bit-encoded QRAM that fits the device,
 *   2. route it onto the device's coupling map with SABRE-lite,
 *   3. simulate under the device noise model,
 *   4. report the error-reduction factor needed for a usable query.
 *
 * Run: ./build/examples/nisq_deployment
 */

#include <cstdio>

#include "common/table.hh"
#include "layout/devices.hh"
#include "layout/sabre_lite.hh"
#include "qram/compact.hh"
#include "sim/fidelity.hh"

using namespace qramsim;

int
main()
{
    struct Target
    {
        unsigned m, k;
        bool guadalupe;
    };
    const Target targets[] = {
        {1, 0, false}, {1, 1, false}, {2, 0, true}, {2, 1, true}};

    Table t("Compact QRAM on IBM-like devices",
            {"config", "device", "logical-qubits", "extra-SWAPs",
             "routed-gates", "F(today)", "F(10x)", "F(100x)",
             "usable-at"});

    for (const Target &tg : targets) {
        Device dev =
            tg.guadalupe ? makeIbmGuadalupe() : makeIbmPerth();
        Rng rng(31 + tg.m * 4 + tg.k);
        Memory mem = Memory::random(tg.m + tg.k, rng);
        QueryCircuit qc = CompactQram(tg.m, tg.k).build(mem);
        RoutedCircuit rc = routeOntoDevice(qc, dev.coupling);
        FidelityEstimator est(
            rc.circuit, rc.addressQubits, rc.busQubit,
            AddressSuperposition::uniform(tg.m + tg.k));

        auto fidelityAt = [&](double er) {
            DeviceNoise noise(dev.rates.oneQubit / er,
                              dev.rates.twoQubit / er);
            return est.estimate(noise, 400, 7 + tg.m).reduced;
        };
        double f1 = fidelityAt(1), f10 = fidelityAt(10),
               f100 = fidelityAt(100);
        const char *usable = f1 > 0.9    ? "today"
                             : f10 > 0.9  ? "10x better gates"
                             : f100 > 0.9 ? "100x better gates"
                                          : ">100x";
        t.addRow({"m=" + std::to_string(tg.m) +
                      ",k=" + std::to_string(tg.k),
                  dev.coupling.name(),
                  Table::fmt(qc.circuit.numQubits()),
                  Table::fmt(rc.swapCount),
                  Table::fmt(rc.circuit.numGates()), Table::fmt(f1, 3),
                  Table::fmt(f10, 3), Table::fmt(f100, 3), usable});
    }
    t.print();

    std::printf("The Appendix A conclusion, reproduced: with gate "
                "errors ~10x better than\ntoday, small queries become "
                "meaningful; at ~100x (near-term error\ncorrection), "
                "query fidelity clears 0.9-0.98.\n");
    return 0;
}
