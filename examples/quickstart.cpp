/**
 * @file
 * Quickstart: build a virtual QRAM, query it in superposition, and
 * inspect its cost.
 *
 * A 32-cell classical memory is served by a QRAM of physical width
 * m = 3 (8 data cells resident) with SQC width k = 2 (4 pages swapped
 * through) — the virtual-memory trick of Sec. 3.1.3. We verify the
 * query contract exactly with the Feynman-path simulator, then print
 * the circuit's resource footprint.
 *
 * Build & run:  cmake --build build && ./build/examples/quickstart
 */

#include <cstdio>

#include "circuit/cost_model.hh"
#include "qram/virtual_qram.hh"
#include "sim/feynman.hh"

using namespace qramsim;

int
main()
{
    // 1. Classical data: 32 cells, one bit each.
    const unsigned m = 3, k = 2;
    Rng rng(7);
    Memory mem = Memory::random(m + k, rng);

    // 2. Compile a query circuit for it.
    VirtualQram qram(m, k); // all three optimizations on by default
    QueryCircuit qc = qram.build(mem);
    std::printf("architecture : %s\n", qram.name().c_str());
    std::printf("memory cells : %zu (pages of %u cells)\n", mem.size(),
                1u << m);
    std::printf("qubits       : %zu\n", qc.circuit.numQubits());
    std::printf("gates        : %zu\n\n", qc.circuit.numGates());

    // 3. Query every classical address and check Eq. 2's contract:
    //    |i>|0> -> |i>|x_i>, internals restored.
    FeynmanExecutor exec(qc.circuit);
    std::size_t correct = 0;
    for (std::uint64_t i = 0; i < mem.size(); ++i) {
        PathState in(qc.circuit.numQubits());
        for (unsigned b = 0; b < m + k; ++b)
            in.bits.set(qc.addressQubits[b], (i >> b) & 1);
        PathState out = exec.runIdeal(in);
        bool bus = out.bits.get(qc.busQubit);
        if (bus == mem.bit(i))
            ++correct;
        if (i < 4)
            std::printf("  query |%02lu> -> bus = %d (memory: %d)\n",
                        static_cast<unsigned long>(i), bus ? 1 : 0,
                        mem.bit(i) ? 1 : 0);
    }
    std::printf("  ... %zu/%zu addresses correct\n\n", correct,
                mem.size());

    // A superposition query touches every path at once — the same
    // circuit serves all 32 addresses coherently; the per-address
    // checks above are exactly its Feynman paths.

    // 4. Resource footprint under the Clifford+T cost model.
    CircuitResources r = measureResources(qc.circuit);
    std::printf("resources    : %s\n", r.toString().c_str());
    return correct == mem.size() ? 0 : 1;
}
