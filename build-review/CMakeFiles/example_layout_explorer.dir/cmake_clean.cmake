file(REMOVE_RECURSE
  "CMakeFiles/example_layout_explorer.dir/examples/layout_explorer.cpp.o"
  "CMakeFiles/example_layout_explorer.dir/examples/layout_explorer.cpp.o.d"
  "example_layout_explorer"
  "example_layout_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_layout_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
