# Empty dependencies file for example_layout_explorer.
# This may be replaced when dependencies are built.
