# Empty dependencies file for test_feynman.
# This may be replaced when dependencies are built.
