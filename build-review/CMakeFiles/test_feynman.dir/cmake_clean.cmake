file(REMOVE_RECURSE
  "CMakeFiles/test_feynman.dir/tests/test_feynman.cc.o"
  "CMakeFiles/test_feynman.dir/tests/test_feynman.cc.o.d"
  "test_feynman"
  "test_feynman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feynman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
