# Empty dependencies file for test_sharding.
# This may be replaced when dependencies are built.
