file(REMOVE_RECURSE
  "CMakeFiles/test_sharding.dir/tests/test_sharding.cc.o"
  "CMakeFiles/test_sharding.dir/tests/test_sharding.cc.o.d"
  "test_sharding"
  "test_sharding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sharding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
