file(REMOVE_RECURSE
  "CMakeFiles/test_wide.dir/tests/test_wide.cc.o"
  "CMakeFiles/test_wide.dir/tests/test_wide.cc.o.d"
  "test_wide"
  "test_wide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
