
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bounds.cc" "CMakeFiles/qramsim.dir/src/analysis/bounds.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/analysis/bounds.cc.o.d"
  "/root/repo/src/analysis/lightcone.cc" "CMakeFiles/qramsim.dir/src/analysis/lightcone.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/analysis/lightcone.cc.o.d"
  "/root/repo/src/analysis/resources.cc" "CMakeFiles/qramsim.dir/src/analysis/resources.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/analysis/resources.cc.o.d"
  "/root/repo/src/circuit/circuit.cc" "CMakeFiles/qramsim.dir/src/circuit/circuit.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/circuit/circuit.cc.o.d"
  "/root/repo/src/circuit/cost_model.cc" "CMakeFiles/qramsim.dir/src/circuit/cost_model.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/circuit/cost_model.cc.o.d"
  "/root/repo/src/circuit/qasm.cc" "CMakeFiles/qramsim.dir/src/circuit/qasm.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/circuit/qasm.cc.o.d"
  "/root/repo/src/circuit/schedule.cc" "CMakeFiles/qramsim.dir/src/circuit/schedule.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/circuit/schedule.cc.o.d"
  "/root/repo/src/common/simd.cc" "CMakeFiles/qramsim.dir/src/common/simd.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/common/simd.cc.o.d"
  "/root/repo/src/ecc/surface_code.cc" "CMakeFiles/qramsim.dir/src/ecc/surface_code.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/ecc/surface_code.cc.o.d"
  "/root/repo/src/layout/devices.cc" "CMakeFiles/qramsim.dir/src/layout/devices.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/layout/devices.cc.o.d"
  "/root/repo/src/layout/grid.cc" "CMakeFiles/qramsim.dir/src/layout/grid.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/layout/grid.cc.o.d"
  "/root/repo/src/layout/htree.cc" "CMakeFiles/qramsim.dir/src/layout/htree.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/layout/htree.cc.o.d"
  "/root/repo/src/layout/routers.cc" "CMakeFiles/qramsim.dir/src/layout/routers.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/layout/routers.cc.o.d"
  "/root/repo/src/layout/sabre_lite.cc" "CMakeFiles/qramsim.dir/src/layout/sabre_lite.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/layout/sabre_lite.cc.o.d"
  "/root/repo/src/layout/teleport.cc" "CMakeFiles/qramsim.dir/src/layout/teleport.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/layout/teleport.cc.o.d"
  "/root/repo/src/qram/baselines.cc" "CMakeFiles/qramsim.dir/src/qram/baselines.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/qram/baselines.cc.o.d"
  "/root/repo/src/qram/bucket_brigade.cc" "CMakeFiles/qramsim.dir/src/qram/bucket_brigade.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/qram/bucket_brigade.cc.o.d"
  "/root/repo/src/qram/compact.cc" "CMakeFiles/qramsim.dir/src/qram/compact.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/qram/compact.cc.o.d"
  "/root/repo/src/qram/fanout.cc" "CMakeFiles/qramsim.dir/src/qram/fanout.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/qram/fanout.cc.o.d"
  "/root/repo/src/qram/select_swap.cc" "CMakeFiles/qramsim.dir/src/qram/select_swap.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/qram/select_swap.cc.o.d"
  "/root/repo/src/qram/session.cc" "CMakeFiles/qramsim.dir/src/qram/session.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/qram/session.cc.o.d"
  "/root/repo/src/qram/sqc.cc" "CMakeFiles/qramsim.dir/src/qram/sqc.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/qram/sqc.cc.o.d"
  "/root/repo/src/qram/tree.cc" "CMakeFiles/qramsim.dir/src/qram/tree.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/qram/tree.cc.o.d"
  "/root/repo/src/qram/virtual_qram.cc" "CMakeFiles/qramsim.dir/src/qram/virtual_qram.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/qram/virtual_qram.cc.o.d"
  "/root/repo/src/qram/wide.cc" "CMakeFiles/qramsim.dir/src/qram/wide.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/qram/wide.cc.o.d"
  "/root/repo/src/sim/dense.cc" "CMakeFiles/qramsim.dir/src/sim/dense.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/sim/dense.cc.o.d"
  "/root/repo/src/sim/feynman.cc" "CMakeFiles/qramsim.dir/src/sim/feynman.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/sim/feynman.cc.o.d"
  "/root/repo/src/sim/fidelity.cc" "CMakeFiles/qramsim.dir/src/sim/fidelity.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/sim/fidelity.cc.o.d"
  "/root/repo/src/sim/noise.cc" "CMakeFiles/qramsim.dir/src/sim/noise.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/sim/noise.cc.o.d"
  "/root/repo/src/sim/sharding.cc" "CMakeFiles/qramsim.dir/src/sim/sharding.cc.o" "gcc" "CMakeFiles/qramsim.dir/src/sim/sharding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
