# Empty dependencies file for qramsim.
# This may be replaced when dependencies are built.
