file(REMOVE_RECURSE
  "libqramsim.a"
)
