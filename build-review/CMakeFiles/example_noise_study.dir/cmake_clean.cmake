file(REMOVE_RECURSE
  "CMakeFiles/example_noise_study.dir/examples/noise_study.cpp.o"
  "CMakeFiles/example_noise_study.dir/examples/noise_study.cpp.o.d"
  "example_noise_study"
  "example_noise_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_noise_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
