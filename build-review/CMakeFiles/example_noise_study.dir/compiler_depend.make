# Empty compiler generated dependencies file for example_noise_study.
# This may be replaced when dependencies are built.
