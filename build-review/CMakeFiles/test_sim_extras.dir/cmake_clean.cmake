file(REMOVE_RECURSE
  "CMakeFiles/test_sim_extras.dir/tests/test_sim_extras.cc.o"
  "CMakeFiles/test_sim_extras.dir/tests/test_sim_extras.cc.o.d"
  "test_sim_extras"
  "test_sim_extras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
