# Empty dependencies file for test_sim_extras.
# This may be replaced when dependencies are built.
