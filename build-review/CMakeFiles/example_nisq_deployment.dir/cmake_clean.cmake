file(REMOVE_RECURSE
  "CMakeFiles/example_nisq_deployment.dir/examples/nisq_deployment.cpp.o"
  "CMakeFiles/example_nisq_deployment.dir/examples/nisq_deployment.cpp.o.d"
  "example_nisq_deployment"
  "example_nisq_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_nisq_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
