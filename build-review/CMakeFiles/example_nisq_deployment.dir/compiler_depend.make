# Empty compiler generated dependencies file for example_nisq_deployment.
# This may be replaced when dependencies are built.
