file(REMOVE_RECURSE
  "CMakeFiles/bench_bounds.dir/bench/bench_bounds.cc.o"
  "CMakeFiles/bench_bounds.dir/bench/bench_bounds.cc.o.d"
  "bench_bounds"
  "bench_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
