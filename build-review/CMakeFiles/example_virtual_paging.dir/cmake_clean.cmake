file(REMOVE_RECURSE
  "CMakeFiles/example_virtual_paging.dir/examples/virtual_paging.cpp.o"
  "CMakeFiles/example_virtual_paging.dir/examples/virtual_paging.cpp.o.d"
  "example_virtual_paging"
  "example_virtual_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_virtual_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
