# Empty compiler generated dependencies file for example_virtual_paging.
# This may be replaced when dependencies are built.
