# Empty compiler generated dependencies file for test_qram_correctness.
# This may be replaced when dependencies are built.
