file(REMOVE_RECURSE
  "CMakeFiles/test_qram_correctness.dir/tests/test_qram_correctness.cc.o"
  "CMakeFiles/test_qram_correctness.dir/tests/test_qram_correctness.cc.o.d"
  "test_qram_correctness"
  "test_qram_correctness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qram_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
