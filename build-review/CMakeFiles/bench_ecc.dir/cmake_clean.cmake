file(REMOVE_RECURSE
  "CMakeFiles/bench_ecc.dir/bench/bench_ecc.cc.o"
  "CMakeFiles/bench_ecc.dir/bench/bench_ecc.cc.o.d"
  "bench_ecc"
  "bench_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
