# Empty dependencies file for bench_ecc.
# This may be replaced when dependencies are built.
