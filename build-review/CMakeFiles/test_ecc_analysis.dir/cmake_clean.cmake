file(REMOVE_RECURSE
  "CMakeFiles/test_ecc_analysis.dir/tests/test_ecc_analysis.cc.o"
  "CMakeFiles/test_ecc_analysis.dir/tests/test_ecc_analysis.cc.o.d"
  "test_ecc_analysis"
  "test_ecc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
