# Empty dependencies file for bench_simulator.
# This may be replaced when dependencies are built.
