file(REMOVE_RECURSE
  "CMakeFiles/bench_simulator.dir/bench/bench_simulator.cc.o"
  "CMakeFiles/bench_simulator.dir/bench/bench_simulator.cc.o.d"
  "bench_simulator"
  "bench_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
