# Empty dependencies file for qramsim_shard.
# This may be replaced when dependencies are built.
