file(REMOVE_RECURSE
  "CMakeFiles/qramsim_shard.dir/tools/qramsim_shard.cc.o"
  "CMakeFiles/qramsim_shard.dir/tools/qramsim_shard.cc.o.d"
  "qramsim_shard"
  "qramsim_shard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qramsim_shard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
