file(REMOVE_RECURSE
  "CMakeFiles/test_simd.dir/tests/test_simd.cc.o"
  "CMakeFiles/test_simd.dir/tests/test_simd.cc.o.d"
  "test_simd"
  "test_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
