# Empty compiler generated dependencies file for example_grover_oracle.
# This may be replaced when dependencies are built.
