file(REMOVE_RECURSE
  "CMakeFiles/example_grover_oracle.dir/examples/grover_oracle.cpp.o"
  "CMakeFiles/example_grover_oracle.dir/examples/grover_oracle.cpp.o.d"
  "example_grover_oracle"
  "example_grover_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_grover_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
