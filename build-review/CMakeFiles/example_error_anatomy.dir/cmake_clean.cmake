file(REMOVE_RECURSE
  "CMakeFiles/example_error_anatomy.dir/examples/error_anatomy.cpp.o"
  "CMakeFiles/example_error_anatomy.dir/examples/error_anatomy.cpp.o.d"
  "example_error_anatomy"
  "example_error_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_error_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
