# Empty dependencies file for example_error_anatomy.
# This may be replaced when dependencies are built.
