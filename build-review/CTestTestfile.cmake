# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-review
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_circuit "/root/repo/build-review/test_circuit")
set_tests_properties(test_circuit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;90;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_common "/root/repo/build-review/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;90;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_ecc_analysis "/root/repo/build-review/test_ecc_analysis")
set_tests_properties(test_ecc_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;90;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_ensemble "/root/repo/build-review/test_ensemble")
set_tests_properties(test_ensemble PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;90;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_feynman "/root/repo/build-review/test_feynman")
set_tests_properties(test_feynman PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;90;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_layout "/root/repo/build-review/test_layout")
set_tests_properties(test_layout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;90;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build-review/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;90;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_qram_correctness "/root/repo/build-review/test_qram_correctness")
set_tests_properties(test_qram_correctness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;90;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_session "/root/repo/build-review/test_session")
set_tests_properties(test_session PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;90;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_sharding "/root/repo/build-review/test_sharding")
set_tests_properties(test_sharding PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;90;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_sim_extras "/root/repo/build-review/test_sim_extras")
set_tests_properties(test_sim_extras PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;90;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_simd "/root/repo/build-review/test_simd")
set_tests_properties(test_simd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;90;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_tree "/root/repo/build-review/test_tree")
set_tests_properties(test_tree PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;90;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_wide "/root/repo/build-review/test_wide")
set_tests_properties(test_wide PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;90;add_test;/root/repo/CMakeLists.txt;0;")
